// Package btree implements the B⁺-tree substrate of the reproduction: an
// order-N tree (capacity counted in items per node, matching the paper's
// "maximum of 13 items") storing all keys in the leaves.
//
// The package provides both a conventional sequential API (Insert, Delete,
// Search) used by the simulator's tree-construction phase, and the
// fine-grained node-level operations (FindChild, Covers, Split,
// AddChild, ...) that the concurrent algorithms in internal/sim drive while
// holding per-node locks.
//
// Every node carries a right-sibling link and a high key, so the same node
// layout serves the Link-type (Lehman–Yao) algorithm. Left links are also
// maintained purely as an implementation convenience for merge-at-empty
// node removal; the Link-type search algorithm itself never follows them.
//
// Two restructuring policies are supported:
//
//   - MergeAtEmpty (the paper's choice, from Johnson & Shasha [9,10]):
//     a node is removed only when its last item is deleted.
//   - MergeAtHalf (Wedekind's classical policy): a node is rebalanced when
//     it falls below half occupancy.
package btree

import "fmt"

// Policy selects the restructuring strategy applied on deletes.
type Policy int

const (
	// MergeAtEmpty removes a node only when it becomes completely empty.
	MergeAtEmpty Policy = iota
	// MergeAtHalf rebalances (borrow or merge) when a node drops below
	// ceil(cap/2) items.
	MergeAtHalf
)

func (p Policy) String() string {
	switch p {
	case MergeAtEmpty:
		return "merge-at-empty"
	case MergeAtHalf:
		return "merge-at-half"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats counts restructuring events since the tree was created.
type Stats struct {
	Splits  int64 // node splits (all levels)
	Removes int64 // node removals due to emptiness (merge-at-empty)
	Merges  int64 // node merges (merge-at-half)
	Borrows int64 // item redistributions (merge-at-half)
}

// Tree is a B⁺-tree. The zero value is not usable; call New.
// Tree is not safe for concurrent use; the concurrent algorithms in
// internal/sim and internal/cbtree layer locking on top.
type Tree struct {
	cap    int
	policy Policy
	root   *Node
	height int
	size   int
	stats  Stats
}

// Node is a B⁺-tree node. Level 1 nodes are leaves holding key/value pairs;
// higher nodes hold child pointers separated by router keys.
type Node struct {
	level    int
	keys     []int64 // leaf: item keys; internal: routers (len = len(children)-1)
	vals     []uint64
	children []*Node
	right    *Node
	left     *Node
	high     int64 // exclusive upper bound of this node's key range
	hasHigh  bool  // false means +infinity (rightmost node of its level)
}

// New creates an empty tree whose nodes hold at most cap items
// (cap >= 3 so splits always leave both halves non-empty).
func New(cap int, policy Policy) *Tree {
	if cap < 3 {
		panic(fmt.Sprintf("btree: capacity %d too small (need >= 3)", cap))
	}
	return &Tree{
		cap:    cap,
		policy: policy,
		root:   &Node{level: 1},
		height: 1,
	}
}

// Cap returns the maximum number of items per node (the paper's N).
func (t *Tree) Cap() int { return t.cap }

// Policy returns the restructuring policy.
func (t *Tree) Policy() Policy { return t.policy }

// Len returns the number of keys stored in the tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels; leaves are level 1, the root is
// level Height().
func (t *Tree) Height() int { return t.height }

// Root returns the current root node.
func (t *Tree) Root() *Node { return t.root }

// Stats returns the restructuring counters.
func (t *Tree) Stats() Stats { return t.stats }

// ---------------------------------------------------------------------------
// Node accessors used by the concurrent algorithms.

// Level returns the node's level (1 = leaf).
func (n *Node) Level() int { return n.level }

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.level == 1 }

// Items returns the occupancy in the paper's sense: number of keys for a
// leaf, number of children (the fanout) for an internal node.
func (n *Node) Items() int {
	if n.IsLeaf() {
		return len(n.keys)
	}
	return len(n.children)
}

// Right returns the right sibling, or nil for the rightmost node.
func (n *Node) Right() *Node { return n.right }

// HighKey returns the exclusive upper bound of the node's key range.
// ok is false for the rightmost node of a level (bound +infinity).
func (n *Node) HighKey() (high int64, ok bool) { return n.high, n.hasHigh }

// Covers reports whether key falls below the node's high key, i.e. whether
// a Link-type search may stop descending through right links here.
func (n *Node) Covers(key int64) bool { return !n.hasHigh || key < n.high }

// FindChild returns the child responsible for key. It panics on a leaf.
func (n *Node) FindChild(key int64) *Node {
	if n.IsLeaf() {
		panic("btree: FindChild on leaf")
	}
	return n.children[n.childIndex(key)]
}

// childIndex returns the index of the child responsible for key:
// the first i with key < keys[i], else the last child.
func (n *Node) childIndex(key int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key < n.keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// keyIndex returns the position of key in a leaf and whether it is present.
func (n *Node) keyIndex(key int64) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == key
}

// LeafGet looks key up in a leaf.
func (n *Node) LeafGet(key int64) (uint64, bool) {
	if !n.IsLeaf() {
		panic("btree: LeafGet on internal node")
	}
	i, ok := n.keyIndex(key)
	if !ok {
		return 0, false
	}
	return n.vals[i], true
}

// ---------------------------------------------------------------------------
// Safety tests (the paper's op-safe predicates).

// InsertSafe reports whether inserting into n cannot split it.
func (t *Tree) InsertSafe(n *Node) bool { return n.Items() < t.cap }

// DeleteSafe reports whether deleting from n cannot restructure it.
// Under merge-at-empty a node is unsafe only when it holds a single item
// (the next delete empties it); the root is always safe. Under
// merge-at-half a node is unsafe at or below the underflow threshold.
func (t *Tree) DeleteSafe(n *Node) bool {
	if n == t.root {
		return true
	}
	switch t.policy {
	case MergeAtEmpty:
		return n.Items() > 1
	case MergeAtHalf:
		return n.Items() > t.minItems()
	default:
		panic("btree: unknown policy")
	}
}

// minItems is the merge-at-half underflow threshold.
func (t *Tree) minItems() int { return (t.cap + 1) / 2 }

// ---------------------------------------------------------------------------
// Sequential API.

// Search returns the value stored under key.
func (t *Tree) Search(key int64) (uint64, bool) {
	n := t.root
	for !n.IsLeaf() {
		n = n.FindChild(key)
	}
	return n.LeafGet(key)
}

// Insert stores key→val. If key is already present its value is replaced
// and Insert reports false; a fresh insertion reports true.
func (t *Tree) Insert(key int64, val uint64) bool {
	// Descend remembering the path for split propagation.
	path := make([]*Node, 0, t.height)
	n := t.root
	for !n.IsLeaf() {
		path = append(path, n)
		n = n.FindChild(key)
	}
	i, ok := n.keyIndex(key)
	if ok {
		n.vals[i] = val
		return false
	}
	n.keys = insertAt(n.keys, i, key)
	n.vals = insertAt(n.vals, i, val)
	t.size++

	// Split upward while over capacity.
	for child := n; len(child.keys) > t.cap || len(child.children) > t.cap; {
		sib, sep := t.Split(child)
		if len(path) == 0 {
			t.GrowRoot(child, sep, sib)
			break
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		parent.AddChild(sep, sib)
		child = parent
	}
	return true
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key int64) bool {
	path := make([]*Node, 0, t.height)
	n := t.root
	for !n.IsLeaf() {
		path = append(path, n)
		n = n.FindChild(key)
	}
	i, ok := n.keyIndex(key)
	if !ok {
		return false
	}
	n.keys = removeAt(n.keys, i)
	n.vals = removeAt(n.vals, i)
	t.size--

	switch t.policy {
	case MergeAtEmpty:
		t.collapseEmpty(n, path)
	case MergeAtHalf:
		t.rebalance(n, path)
	}
	return true
}

// Range calls fn for each key in [lo, hi] in ascending order, following
// leaf links; it stops early if fn returns false.
func (t *Tree) Range(lo, hi int64, fn func(key int64, val uint64) bool) {
	n := t.root
	for !n.IsLeaf() {
		n = n.FindChild(lo)
	}
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.right
	}
}

// ---------------------------------------------------------------------------
// Structural mutations shared with the concurrent algorithms.

// Split divides an over-full (or at least 2-item) node, moving the upper
// half of its items to a new right sibling. It returns the sibling and the
// separator key to install in the parent. Right/left links and high keys
// are maintained (a half-split in Lehman–Yao terms).
func (t *Tree) Split(n *Node) (sib *Node, sep int64) {
	t.stats.Splits++
	sib = &Node{level: n.level}
	if n.IsLeaf() {
		m := (len(n.keys) + 1) / 2
		sib.keys = append(sib.keys, n.keys[m:]...)
		sib.vals = append(sib.vals, n.vals[m:]...)
		n.keys = n.keys[:m:m]
		n.vals = n.vals[:m:m]
		sep = sib.keys[0]
	} else {
		m := (len(n.children) + 1) / 2
		// children m..end and routers m..end move; router m-1 is promoted.
		sep = n.keys[m-1]
		sib.children = append(sib.children, n.children[m:]...)
		sib.keys = append(sib.keys, n.keys[m:]...)
		n.children = n.children[:m:m]
		n.keys = n.keys[: m-1 : m-1]
	}
	sib.high, sib.hasHigh = n.high, n.hasHigh
	sib.right = n.right
	sib.left = n
	if n.right != nil {
		n.right.left = sib
	}
	n.right = sib
	n.high, n.hasHigh = sep, true
	return sib, sep
}

// AddChild installs a (separator, child) pair produced by Split into the
// parent node n. The child must cover keys in [sep, previous bound).
func (n *Node) AddChild(sep int64, child *Node) {
	if n.IsLeaf() {
		panic("btree: AddChild on leaf")
	}
	i := n.childIndex(sep)
	n.keys = insertAt(n.keys, i, sep)
	n.children = insertAt(n.children, i+1, child)
}

// GrowRoot replaces the root after a root split: old is the previous root
// (already split), sib its new sibling, sep the separator. It panics if old
// is not the current root — under the concurrent algorithms the caller must
// hold the root lock, so a mismatch is a protocol violation.
func (t *Tree) GrowRoot(old *Node, sep int64, sib *Node) {
	if old != t.root {
		panic("btree: GrowRoot on stale root")
	}
	t.root = &Node{
		level:    old.level + 1,
		keys:     []int64{sep},
		children: []*Node{old, sib},
	}
	t.height++
}

// LeafInsert stores key→val in leaf n (which the caller must have located
// and, under a concurrent algorithm, locked), reporting whether the key was
// fresh. The node may temporarily exceed capacity by one item; the caller
// is responsible for splitting it.
func (t *Tree) LeafInsert(n *Node, key int64, val uint64) bool {
	if !n.IsLeaf() {
		panic("btree: LeafInsert on internal node")
	}
	i, ok := n.keyIndex(key)
	if ok {
		n.vals[i] = val
		return false
	}
	n.keys = insertAt(n.keys, i, key)
	n.vals = insertAt(n.vals, i, val)
	t.size++
	return true
}

// LeafDelete removes key from leaf n, reporting whether it was present.
// The caller is responsible for any restructuring if the leaf empties.
func (t *Tree) LeafDelete(n *Node, key int64) bool {
	if !n.IsLeaf() {
		panic("btree: LeafDelete on internal node")
	}
	i, ok := n.keyIndex(key)
	if !ok {
		return false
	}
	n.keys = removeAt(n.keys, i)
	n.vals = removeAt(n.vals, i)
	t.size--
	return true
}

// Overfull reports whether the node exceeds capacity and must split.
func (t *Tree) Overfull(n *Node) bool { return n.Items() > t.cap }

// RemoveChild removes the empty node child from parent (merge-at-empty
// restructuring driven by a concurrent algorithm holding both locks).
func (t *Tree) RemoveChild(parent, child *Node) {
	if child.Items() != 0 {
		panic("btree: RemoveChild of non-empty node")
	}
	parent.removeChild(child)
	t.stats.Removes++
}

// ShrinkRoot collapses single-child or empty roots after merge-at-empty
// restructuring reaches the top of the tree.
func (t *Tree) ShrinkRoot() { t.shrinkRoot() }

// collapseEmpty implements merge-at-empty: if leaf n became empty, remove
// it from its parent, cascading upward; shrink the root if it ends up with
// a single child.
func (t *Tree) collapseEmpty(n *Node, path []*Node) {
	for n.Items() == 0 && len(path) > 0 {
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		parent.removeChild(n)
		t.stats.Removes++
		n = parent
	}
	t.shrinkRoot()
}

// removeChild deletes child (which must be empty) from n, splicing sibling
// links and absorbing its key range into a neighbor. The range is absorbed
// by the right neighbor when one exists under the same parent — low bounds
// are implicit, so no stored high key changes. Only when the rightmost
// child is removed does the left sibling absorb, which requires extending
// the high keys down that sibling's rightmost spine.
func (n *Node) removeChild(child *Node) {
	i := indexOf(n.children, child)
	// Splice the level link chain.
	if child.left != nil {
		child.left.right = child.right
	}
	if child.right != nil {
		child.right.left = child.left
	}
	switch {
	case i < len(n.children)-1:
		// Right neighbor absorbs [child.low, ...): drop the router that
		// separated them; nothing else changes.
		n.keys = removeAt(n.keys, i)
	case i > 0:
		// Rightmost child removed: left sibling absorbs upward, and every
		// rightmost descendant's routed range extends with it.
		left := n.children[i-1]
		for s := left; ; s = s.children[len(s.children)-1] {
			s.high, s.hasHigh = child.high, child.hasHigh
			if s.IsLeaf() {
				break
			}
		}
		n.keys = removeAt(n.keys, i-1)
	}
	// i == 0 with a single child: n becomes empty and its own removal (or
	// a root shrink) absorbs the range one level up.
	n.children = removeAt(n.children, i)
	child.left, child.right = nil, nil
}

// shrinkRoot collapses chains of single-child roots and resets an empty
// internal root to an empty leaf.
func (t *Tree) shrinkRoot() {
	for !t.root.IsLeaf() && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	if !t.root.IsLeaf() && len(t.root.children) == 0 {
		t.root = &Node{level: 1}
		t.height = 1
	}
}

// ---------------------------------------------------------------------------
// Merge-at-half rebalancing.

// rebalance restores the merge-at-half invariant after a delete from n.
func (t *Tree) rebalance(n *Node, path []*Node) {
	for len(path) > 0 && n != t.root && n.Items() < t.minItems() {
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		i := indexOf(parent.children, n)

		// Try borrowing from an adjacent same-parent sibling first.
		if i+1 < len(parent.children) && parent.children[i+1].Items() > t.minItems() {
			t.borrowFromRight(parent, i)
			return
		}
		if i > 0 && parent.children[i-1].Items() > t.minItems() {
			t.borrowFromLeft(parent, i)
			return
		}
		// Merge with a neighbor.
		if i+1 < len(parent.children) {
			t.mergeChildren(parent, i)
		} else if i > 0 {
			t.mergeChildren(parent, i-1)
		} else {
			return // single-child parent; handled by root shrink
		}
		n = parent
	}
	t.shrinkRoot()
}

// borrowFromRight moves the first item of parent.children[i+1] into
// parent.children[i].
func (t *Tree) borrowFromRight(parent *Node, i int) {
	t.stats.Borrows++
	l, r := parent.children[i], parent.children[i+1]
	if l.IsLeaf() {
		l.keys = append(l.keys, r.keys[0])
		l.vals = append(l.vals, r.vals[0])
		r.keys = removeAt(r.keys, 0)
		r.vals = removeAt(r.vals, 0)
		parent.keys[i] = r.keys[0]
	} else {
		// Rotate through the parent router.
		l.keys = append(l.keys, parent.keys[i])
		l.children = append(l.children, r.children[0])
		parent.keys[i] = r.keys[0]
		r.keys = removeAt(r.keys, 0)
		r.children = removeAt(r.children, 0)
	}
	l.high, l.hasHigh = parent.keys[i], true
}

// borrowFromLeft moves the last item of parent.children[i-1] into
// parent.children[i].
func (t *Tree) borrowFromLeft(parent *Node, i int) {
	t.stats.Borrows++
	l, r := parent.children[i-1], parent.children[i]
	if r.IsLeaf() {
		k := l.keys[len(l.keys)-1]
		v := l.vals[len(l.vals)-1]
		l.keys = l.keys[:len(l.keys)-1]
		l.vals = l.vals[:len(l.vals)-1]
		r.keys = insertAt(r.keys, 0, k)
		r.vals = insertAt(r.vals, 0, v)
		parent.keys[i-1] = k
	} else {
		c := l.children[len(l.children)-1]
		sep := l.keys[len(l.keys)-1]
		l.keys = l.keys[:len(l.keys)-1]
		l.children = l.children[:len(l.children)-1]
		r.children = insertAt(r.children, 0, c)
		r.keys = insertAt(r.keys, 0, parent.keys[i-1])
		parent.keys[i-1] = sep
	}
	l.high, l.hasHigh = parent.keys[i-1], true
}

// mergeChildren merges parent.children[i+1] into parent.children[i].
func (t *Tree) mergeChildren(parent *Node, i int) {
	t.stats.Merges++
	l, r := parent.children[i], parent.children[i+1]
	if l.IsLeaf() {
		l.keys = append(l.keys, r.keys...)
		l.vals = append(l.vals, r.vals...)
	} else {
		l.keys = append(l.keys, parent.keys[i])
		l.keys = append(l.keys, r.keys...)
		l.children = append(l.children, r.children...)
	}
	l.high, l.hasHigh = r.high, r.hasHigh
	l.right = r.right
	if r.right != nil {
		r.right.left = l
	}
	parent.keys = removeAt(parent.keys, i)
	parent.children = removeAt(parent.children, i+1)
	r.left, r.right = nil, nil
}

// ---------------------------------------------------------------------------
// Small slice helpers.

func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func indexOf(s []*Node, n *Node) int {
	for i, c := range s {
		if c == n {
			return i
		}
	}
	panic("btree: node not found in parent")
}
