package btree

// SearchGE returns the smallest stored key >= key and its value
// (an ordered "seek"). ok is false when no such key exists.
func (t *Tree) SearchGE(key int64) (k int64, v uint64, ok bool) {
	n := t.root
	for !n.IsLeaf() {
		n = n.FindChild(key)
	}
	for n != nil {
		i, _ := n.keyIndex(key)
		if i < len(n.keys) {
			return n.keys[i], n.vals[i], true
		}
		n = n.right
	}
	return 0, 0, false
}

// Min returns the smallest key in the tree.
func (t *Tree) Min() (k int64, v uint64, ok bool) {
	return t.SearchGE(-1 << 63)
}

// Max returns the largest key in the tree.
func (t *Tree) Max() (k int64, v uint64, ok bool) {
	return maxUnder(t.root)
}

// maxUnder finds the largest key in a subtree, scanning children
// right-to-left so lazily emptied rightmost leaves are skipped.
func maxUnder(n *Node) (int64, uint64, bool) {
	if n.IsLeaf() {
		if len(n.keys) == 0 {
			return 0, 0, false
		}
		return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
	}
	for i := len(n.children) - 1; i >= 0; i-- {
		if k, v, ok := maxUnder(n.children[i]); ok {
			return k, v, true
		}
	}
	return 0, 0, false
}
