package btree

import "testing"

// FuzzOps drives the tree with an arbitrary byte-encoded operation
// sequence against a model map, under both restructuring policies,
// checking invariants throughout. Three bytes per op: opcode, key, value.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 2, 2, 1, 1, 0, 2, 1, 0})
	f.Add([]byte{0, 10, 1, 0, 20, 2, 0, 30, 3, 1, 20, 0, 2, 10, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, policy := range []Policy{MergeAtEmpty, MergeAtHalf} {
			tr := New(4, policy)
			model := map[int64]uint64{}
			for i := 0; i+2 < len(data); i += 3 {
				op := data[i] % 3
				key := int64(data[i+1])
				val := uint64(data[i+2])
				switch op {
				case 0:
					_, existed := model[key]
					if fresh := tr.Insert(key, val); fresh == existed {
						t.Fatalf("Insert(%d) freshness mismatch", key)
					}
					model[key] = val
				case 1:
					_, existed := model[key]
					if got := tr.Delete(key); got != existed {
						t.Fatalf("Delete(%d) mismatch", key)
					}
					delete(model, key)
				case 2:
					want, existed := model[key]
					got, ok := tr.Search(key)
					if ok != existed || (ok && got != want) {
						t.Fatalf("Search(%d) mismatch", key)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%v: %v", policy, err)
			}
			if tr.Len() != len(model) {
				t.Fatalf("%v: Len %d vs model %d", policy, tr.Len(), len(model))
			}
			for k, want := range model {
				if got, ok := tr.Search(k); !ok || got != want {
					t.Fatalf("%v: final Search(%d)", policy, k)
				}
			}
		}
	})
}
