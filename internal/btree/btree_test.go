package btree

import (
	"fmt"
	"testing"
	"testing/quick"

	"btreeperf/internal/xrand"
)

func TestNewEmpty(t *testing.T) {
	tr := New(13, MergeAtEmpty)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Search(5); ok {
		t.Fatal("found key in empty tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSmallCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2) did not panic")
		}
	}()
	New(2, MergeAtEmpty)
}

func TestInsertSearchSequential(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	const n = 1000
	for i := int64(0); i < n; i++ {
		if !tr.Insert(i, uint64(i*10)) {
			t.Fatalf("Insert(%d) reported duplicate", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		v, ok := tr.Search(i)
		if !ok || v != uint64(i*10) {
			t.Fatalf("Search(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tr.Search(n + 1); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertDuplicateReplaces(t *testing.T) {
	tr := New(5, MergeAtEmpty)
	tr.Insert(7, 1)
	if tr.Insert(7, 2) {
		t.Fatal("duplicate insert reported fresh")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Search(7); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestInsertReverseAndRandomOrders(t *testing.T) {
	for _, order := range []string{"reverse", "random"} {
		tr := New(7, MergeAtEmpty)
		src := xrand.New(5)
		const n = 2000
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i)
		}
		if order == "reverse" {
			for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
				keys[i], keys[j] = keys[j], keys[i]
			}
		} else {
			for _, p := range src.Perm(n) {
				keys = append(keys, int64(p))
			}
			keys = keys[n:]
		}
		for _, k := range keys {
			tr.Insert(k, uint64(k))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", order, err)
		}
		if tr.Len() != n {
			t.Fatalf("%s: Len = %d", order, tr.Len())
		}
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, uint64(i))
	}
	for i := int64(0); i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) missing", i)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		_, ok := tr.Search(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Search(%d) = %v, want %v", i, ok, want)
		}
	}
}

func TestDeleteAllMergeAtEmpty(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	const n = 500
	for i := int64(0); i < n; i++ {
		tr.Insert(i, uint64(i))
	}
	for i := int64(0); i < n; i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d)", i)
		}
		if i%37 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after Delete(%d): %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d after emptying", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllMergeAtHalf(t *testing.T) {
	tr := New(5, MergeAtHalf)
	const n = 500
	src := xrand.New(9)
	perm := src.Perm(n)
	for i := int64(0); i < n; i++ {
		tr.Insert(i, uint64(i))
	}
	for _, p := range perm {
		if !tr.Delete(int64(p)) {
			t.Fatalf("Delete(%d)", p)
		}
		if p%23 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after Delete(%d): %v", p, err)
			}
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
}

// TestRandomOpsAgainstModel runs a randomized workload against a map model
// under both policies and several capacities, checking invariants
// periodically and full contents at the end.
func TestRandomOpsAgainstModel(t *testing.T) {
	for _, policy := range []Policy{MergeAtEmpty, MergeAtHalf} {
		for _, cap := range []int{3, 4, 13, 59} {
			t.Run(fmt.Sprintf("%v/cap%d", policy, cap), func(t *testing.T) {
				tr := New(cap, policy)
				model := map[int64]uint64{}
				src := xrand.New(uint64(cap) * 1000)
				const ops = 20000
				const keyspace = 3000
				for i := 0; i < ops; i++ {
					k := src.Int63n(keyspace)
					switch src.IntN(3) {
					case 0: // insert
						v := src.Uint64()
						_, existed := model[k]
						fresh := tr.Insert(k, v)
						if fresh == existed {
							t.Fatalf("op %d: Insert(%d) fresh=%v, model existed=%v", i, k, fresh, existed)
						}
						model[k] = v
					case 1: // delete
						_, existed := model[k]
						if got := tr.Delete(k); got != existed {
							t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, existed)
						}
						delete(model, k)
					case 2: // search
						want, existed := model[k]
						got, ok := tr.Search(k)
						if ok != existed || (ok && got != want) {
							t.Fatalf("op %d: Search(%d) = %d,%v want %d,%v", i, k, got, ok, want, existed)
						}
					}
					if i%2500 == 0 {
						if err := tr.CheckInvariants(); err != nil {
							t.Fatalf("op %d: %v", i, err)
						}
					}
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if tr.Len() != len(model) {
					t.Fatalf("Len = %d, model = %d", tr.Len(), len(model))
				}
				for k, want := range model {
					got, ok := tr.Search(k)
					if !ok || got != want {
						t.Fatalf("Search(%d) = %d,%v want %d", k, got, ok, want)
					}
				}
			})
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	for i := int64(0); i < 100; i += 2 {
		tr.Insert(i, uint64(i))
	}
	var got []int64
	tr.Range(10, 20, func(k int64, v uint64) bool {
		if v != uint64(k) {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	for i := int64(0); i < 50; i++ {
		tr.Insert(i, 0)
	}
	n := 0
	tr.Range(0, 49, func(int64, uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestRangeEmptyInterval(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	for i := int64(0); i < 50; i++ {
		tr.Insert(i*10, 0)
	}
	n := 0
	tr.Range(11, 19, func(int64, uint64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("visited %d keys in empty interval", n)
	}
}

func TestSafetyPredicates(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	leaf := tr.Root()
	if !tr.InsertSafe(leaf) {
		t.Fatal("empty leaf should be insert-safe")
	}
	for i := int64(0); i < 4; i++ {
		tr.Insert(i, 0)
	}
	if tr.InsertSafe(tr.Root()) {
		t.Fatal("full leaf should be insert-unsafe")
	}
	// Root is always delete-safe.
	if !tr.DeleteSafe(tr.Root()) {
		t.Fatal("root should be delete-safe")
	}
	// Grow to two levels; a 1-item non-root leaf is delete-unsafe.
	for i := int64(4); i < 40; i++ {
		tr.Insert(i, 0)
	}
	n := tr.Root()
	for !n.IsLeaf() {
		n = n.FindChild(0)
	}
	for n.Items() > 1 {
		tr.Delete(n.keys[0])
	}
	if tr.DeleteSafe(n) {
		t.Fatal("1-item non-root leaf should be delete-unsafe under merge-at-empty")
	}
}

func TestSplitMaintainsLinks(t *testing.T) {
	tr := New(5, MergeAtEmpty)
	for i := int64(0); i < 5; i++ {
		tr.Insert(i, 0)
	}
	leaf := tr.Root()
	sib, sep := tr.Split(leaf)
	tr.GrowRoot(leaf, sep, sib)
	if leaf.Right() != sib {
		t.Fatal("split did not link sibling")
	}
	if h, ok := leaf.HighKey(); !ok || h != sep {
		t.Fatalf("left high = %d,%v want %d", h, ok, sep)
	}
	if _, ok := sib.HighKey(); ok {
		t.Fatal("rightmost sibling should have infinite high key")
	}
	if !leaf.Covers(sep - 1) {
		t.Fatal("left node should cover keys below separator")
	}
	if leaf.Covers(sep) {
		t.Fatal("left node should not cover the separator")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowRootStalePanics(t *testing.T) {
	tr := New(5, MergeAtEmpty)
	for i := int64(0); i < 5; i++ {
		tr.Insert(i, 0)
	}
	leaf := tr.Root()
	sib, sep := tr.Split(leaf)
	tr.GrowRoot(leaf, sep, sib)
	defer func() {
		if recover() == nil {
			t.Fatal("stale GrowRoot did not panic")
		}
	}()
	tr.GrowRoot(leaf, sep, sib)
}

func TestHeightGrowth(t *testing.T) {
	tr := New(3, MergeAtEmpty)
	prev := tr.Height()
	for i := int64(0); i < 200; i++ {
		tr.Insert(i, 0)
		if h := tr.Height(); h < prev {
			t.Fatalf("height decreased during inserts: %d -> %d", prev, h)
		} else {
			prev = h
		}
	}
	if tr.Height() < 4 {
		t.Fatalf("200 keys at cap 3 should give height >= 4, got %d", tr.Height())
	}
}

func TestMergeAtEmptyNeverUnderflows(t *testing.T) {
	// Merge-at-empty keeps nodes even when nearly empty; only emptiness
	// removes them. Verify no restructuring happens above the threshold.
	tr := New(10, MergeAtEmpty)
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, 0)
	}
	base := tr.Stats()
	// Delete one key from each leaf region — far from emptying nodes.
	for i := int64(0); i < 1000; i += 100 {
		tr.Delete(i)
	}
	if got := tr.Stats(); got.Removes != base.Removes {
		t.Fatalf("sparse deletes caused %d node removals", got.Removes-base.Removes)
	}
}

func TestMergeAtHalfRestructuresMore(t *testing.T) {
	// The paper's motivation for merge-at-empty ([9,10]): with more inserts
	// than deletes, merge-at-half restructures far more often on deletes.
	mk := func(policy Policy) Stats {
		tr := New(8, policy)
		src := xrand.New(77)
		for i := 0; i < 30000; i++ {
			k := src.Int63n(5000)
			if src.Float64() < 0.6 {
				tr.Insert(k, 0)
			} else {
				tr.Delete(k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return tr.Stats()
	}
	emptyStats := mk(MergeAtEmpty)
	halfStats := mk(MergeAtHalf)
	emptyRestr := emptyStats.Removes
	halfRestr := halfStats.Merges + halfStats.Borrows
	if halfRestr <= emptyRestr {
		t.Fatalf("merge-at-half restructures (%d) should exceed merge-at-empty removals (%d)",
			halfRestr, emptyRestr)
	}
}

func TestLeafChainCoversAllKeys(t *testing.T) {
	tr := New(6, MergeAtEmpty)
	src := xrand.New(123)
	for i := 0; i < 5000; i++ {
		tr.Insert(src.Int63n(100000), 0)
	}
	// Walk the leaf chain and confirm it sees exactly Len() keys in order.
	n := tr.Root()
	for !n.IsLeaf() {
		n = n.children[0]
	}
	count := 0
	last := int64(-1 << 62)
	for ; n != nil; n = n.Right() {
		for _, k := range n.keys {
			if k <= last {
				t.Fatalf("leaf chain out of order: %d after %d", k, last)
			}
			last = k
			count++
		}
	}
	if count != tr.Len() {
		t.Fatalf("leaf chain saw %d keys, Len = %d", count, tr.Len())
	}
}

func TestStructureStats(t *testing.T) {
	tr := New(13, MergeAtEmpty)
	src := xrand.New(3)
	for i := 0; i < 40000; i++ {
		tr.Insert(src.Int63n(1<<31), uint64(i))
	}
	stats := tr.StructureStats()
	if len(stats) != tr.Height() {
		t.Fatalf("StructureStats has %d levels, height %d", len(stats), tr.Height())
	}
	// Paper setup: ~40k items at N=13 yields a 5-level tree with a root
	// fanout around 6 and interior utilization near ln 2.
	if tr.Height() != 5 {
		t.Fatalf("height = %d, want 5 (paper's configuration)", tr.Height())
	}
	rf := tr.RootFanout()
	if rf < 3 || rf > 12 {
		t.Fatalf("root fanout = %d, expected mid-range", rf)
	}
	leafUtil := stats[0].Util
	if leafUtil < 0.60 || leafUtil > 0.80 {
		t.Fatalf("leaf utilization %.3f outside [0.60, 0.80]", leafUtil)
	}
	for _, ls := range stats[1 : len(stats)-1] {
		if ls.Util < 0.60 || ls.Util > 0.82 {
			t.Fatalf("level %d utilization %.3f outside [0.60, 0.82]", ls.Level, ls.Util)
		}
	}
}

func TestFindChildOnLeafPanics(t *testing.T) {
	tr := New(4, MergeAtEmpty)
	defer func() {
		if recover() == nil {
			t.Fatal("FindChild on leaf did not panic")
		}
	}()
	tr.Root().FindChild(1)
}

func TestLeafGetOnInternalPanics(t *testing.T) {
	tr := New(3, MergeAtEmpty)
	for i := int64(0); i < 10; i++ {
		tr.Insert(i, 0)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LeafGet on internal node did not panic")
		}
	}()
	tr.Root().LeafGet(1)
}

// Property: any sequence of inserts then deletes leaves a structurally
// valid tree whose contents match the surviving key set.
func TestQuickInsertDelete(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed uint64, capRaw uint8, nRaw uint16) bool {
		cap := int(capRaw%12) + 3
		n := int(nRaw%500) + 1
		src := xrand.New(seed)
		tr := New(cap, MergeAtEmpty)
		live := map[int64]bool{}
		for i := 0; i < n; i++ {
			k := src.Int63n(int64(n))
			tr.Insert(k, uint64(k))
			live[k] = true
		}
		for i := 0; i < n/2; i++ {
			k := src.Int63n(int64(n))
			tr.Delete(k)
			delete(live, k)
		}
		if tr.CheckInvariants() != nil || tr.Len() != len(live) {
			return false
		}
		for k := range live {
			if _, ok := tr.Search(k); !ok {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if MergeAtEmpty.String() != "merge-at-empty" || MergeAtHalf.String() != "merge-at-half" {
		t.Fatal("Policy.String")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy string")
	}
}
