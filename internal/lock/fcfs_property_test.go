package lock

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestFCFSPropertyGrantOrder is a randomized property test of strict FCFS
// granting under mixed reader/writer contention: for any two queued
// requests where at least one is a writer, the earlier arrival must be
// granted first. (Two readers may be granted as one batch, so their
// relative order is unconstrained.) In particular, a reader that queues
// behind a writer must never overtake it. Run it under -race: the CI race
// matrix includes this package.
func TestFCFSPropertyGrantOrder(t *testing.T) {
	const (
		seeds    = 25
		requests = 12
	)
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var l FCFSRWMutex
		l.Lock() // blocker: every request below must queue

		classes := make([]bool, requests) // true = writer
		var grantMu sync.Mutex
		grants := make([]int, 0, requests)
		var wg sync.WaitGroup
		for i := 0; i < requests; i++ {
			write := rng.Intn(2) == 0
			classes[i] = write
			wg.Add(1)
			go func(i int, write bool) {
				defer wg.Done()
				if write {
					l.Lock()
				} else {
					l.RLock()
				}
				grantMu.Lock()
				grants = append(grants, i)
				grantMu.Unlock()
				if write {
					l.Unlock()
				} else {
					l.RUnlock()
				}
			}(i, write)
			// Arrival order is the queue order: wait until request i is
			// actually queued before launching request i+1.
			for {
				r, w := l.Contended()
				if r+w == int64(i+1) {
					break
				}
				runtime.Gosched()
			}
		}

		l.Unlock() // release the blocker; the queue drains in FCFS order
		wg.Wait()

		if len(grants) != requests {
			t.Fatalf("seed %d: %d grants for %d requests", seed, len(grants), requests)
		}
		pos := make([]int, requests)
		for gpos, i := range grants {
			pos[i] = gpos
		}
		for i := 0; i < requests; i++ {
			for j := i + 1; j < requests; j++ {
				if (classes[i] || classes[j]) && pos[i] > pos[j] {
					t.Fatalf("seed %d: request %d (%s) arrived before %d (%s) but was granted later (order %v, classes %v)",
						seed, i, class(classes[i]), j, class(classes[j]), grants, classes)
				}
			}
		}
	}
}

func class(write bool) string {
	if write {
		return "writer"
	}
	return "reader"
}
