package lock

import "sync/atomic"

// VersionProbe extends Probe with latch-free read telemetry. A tree level
// whose locks report into a VersionProbe additionally learns how often
// optimistic readers had to restart a validation at that level and how
// often a descent exhausted its retry budget and fell back to locking —
// the OLC counterparts of the R-wait statistics the blocking algorithms
// report (an OLC reader never queues, so its cost shows up as restarts,
// not waits).
type VersionProbe interface {
	Probe
	// ReadRestart is called once per failed snapshot validation.
	ReadRestart()
	// ReadFallback is called once per descent that exhausted its retries
	// and re-descended under locks.
	ReadFallback()
}

// VersionLock is an FCFSRWMutex extended with a seqlock-style version
// word for optimistic lock-coupling: even = stable, odd = write-locked.
// Writers acquire the embedded FCFS W lock as usual but enter and leave
// their critical sections through LockV/UnlockV, which bump the version
// to odd on acquire and back to even on release. Readers take no lock at
// all: they call ReadBegin before touching the protected state and
// Validate after, retrying (or falling back to the embedded lock) when a
// writer was active anywhere in between.
//
// The version word alone does not make unsynchronized reads of mutable
// memory well-defined in Go's memory model; callers must publish the
// protected state through an atomic pointer to immutable data (see
// cbtree's node snapshots) and use the version purely to detect
// concurrent writers and bound staleness. R locks on the embedded mutex
// do not bump the version: they are the fallback path and conflict with
// writers through the lock queue, not through validation.
//
// Invariants (see TestVersionLockSeqlockProperties):
//   - the version is monotonically non-decreasing,
//   - it is odd exactly between a writer's LockV and UnlockV,
//   - each LockV/UnlockV pair advances it by exactly 2.
//
// The zero value is ready to use and has version 0 (stable).
type VersionLock struct {
	FCFSRWMutex
	ver atomic.Uint64
}

// LockV acquires the exclusive lock and bumps the version to odd,
// invalidating every optimistic read that overlaps the critical section.
func (l *VersionLock) LockV() {
	l.Lock()
	l.ver.Add(1)
}

// UnlockV bumps the version back to even and releases the exclusive
// lock. The caller must have republished any snapshot of the protected
// state first, so that version-even always implies snapshot-current.
func (l *VersionLock) UnlockV() {
	l.ver.Add(1)
	l.Unlock()
}

// ReadBegin samples the version at the start of an optimistic read.
// ok is false when a writer currently holds the lock (odd version); the
// caller should restart rather than read state mid-mutation.
func (l *VersionLock) ReadBegin() (v uint64, ok bool) {
	v = l.ver.Load()
	return v, v&1 == 0
}

// Validate reports whether no writer was active since ReadBegin returned
// v: the version is unchanged (and hence still even).
func (l *VersionLock) Validate(v uint64) bool {
	return l.ver.Load() == v
}

// Version returns the current version word (odd while a writer holds the
// lock).
func (l *VersionLock) Version() uint64 { return l.ver.Load() }
