package lock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestUncontendedZeroWait verifies the satellite requirement: acquisitions
// that never queue record zero cumulative queue-wait in both classes.
func TestUncontendedZeroWait(t *testing.T) {
	var l FCFSRWMutex
	for i := 0; i < 100; i++ {
		l.RLock()
		l.RUnlock()
		l.Lock()
		l.Unlock()
		if !l.TryLock() {
			t.Fatal("TryLock failed on a free lock")
		}
		l.Unlock()
	}
	ws := l.WaitStats()
	if ws.WaitNsR != 0 || ws.WaitNsW != 0 {
		t.Fatalf("uncontended acquires recorded wait: R=%dns W=%dns", ws.WaitNsR, ws.WaitNsW)
	}
	if ws.ContendedR != 0 || ws.ContendedW != 0 {
		t.Fatalf("uncontended acquires counted as contended: %+v", ws)
	}
	if ws.AcquiredR != 100 || ws.AcquiredW != 200 {
		t.Fatalf("acquisition counts R=%d W=%d, want 100/200", ws.AcquiredR, ws.AcquiredW)
	}
}

// TestContendedWaitAccumulates verifies that a queued acquisition records
// a plausible nonzero wait.
func TestContendedWaitAccumulates(t *testing.T) {
	var l FCFSRWMutex
	l.Lock()
	done := make(chan struct{})
	go func() {
		l.RLock()
		l.RUnlock()
		close(done)
	}()
	for {
		if r, _ := l.Contended(); r == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	l.Unlock()
	<-done
	ws := l.WaitStats()
	if ws.WaitNsR < int64(5*time.Millisecond) {
		t.Fatalf("queued reader recorded %dns wait, want >= 5ms", ws.WaitNsR)
	}
	if ws.ContendedR != 1 || ws.AcquiredR != 1 {
		t.Fatalf("counters %+v", ws)
	}
}

// countProbe is a minimal Probe accumulating everything atomically.
type countProbe struct {
	acqR, acqW   atomic.Int64
	waitR, waitW atomic.Int64
	heldR, heldW atomic.Int64
	relR, relW   atomic.Int64
	present      atomic.Int64
}

func (p *countProbe) Acquired(write bool, waitNs int64) {
	if write {
		p.acqW.Add(1)
		p.waitW.Add(waitNs)
	} else {
		p.acqR.Add(1)
		p.waitR.Add(waitNs)
	}
}

func (p *countProbe) Held(write bool, heldNs int64) {
	if write {
		p.heldW.Add(heldNs)
		p.relW.Add(1)
	} else {
		p.heldR.Add(heldNs)
		p.relR.Add(1)
	}
}

func (p *countProbe) WriterPresence(ns int64) { p.present.Add(ns) }

// TestProbeHoldIntegral checks that the per-class hold integrals reported
// through a Probe match the true hold durations: a writer holding for ~20ms
// and two overlapping readers each holding ~10ms.
func TestProbeHoldIntegral(t *testing.T) {
	var l FCFSRWMutex
	p := &countProbe{}
	l.SetProbe(p)

	l.Lock()
	time.Sleep(20 * time.Millisecond)
	l.Unlock()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.RLock()
			time.Sleep(10 * time.Millisecond)
			l.RUnlock()
		}()
	}
	wg.Wait()

	if got := p.heldW.Load(); got < int64(15*time.Millisecond) {
		t.Errorf("writer hold integral %v, want >= 15ms", time.Duration(got))
	}
	// Two readers × ~10ms each: the integral sums individual holds even
	// when they overlap in wall-clock time.
	if got := p.heldR.Load(); got < int64(15*time.Millisecond) {
		t.Errorf("reader hold integral %v, want >= 15ms", time.Duration(got))
	}
	if p.relR.Load() != 2 || p.relW.Load() != 1 {
		t.Errorf("release counts R=%d W=%d, want 2/1", p.relR.Load(), p.relW.Load())
	}
	// Writer presence covers at least the exclusive hold.
	if got := p.present.Load(); got < int64(15*time.Millisecond) {
		t.Errorf("writer presence %v, want >= 15ms", time.Duration(got))
	}
	if p.acqR.Load() != 2 || p.acqW.Load() != 1 {
		t.Errorf("acquire counts R=%d W=%d, want 2/1", p.acqR.Load(), p.acqW.Load())
	}
}

// TestProbeZeroOverheadPath ensures WaitStats and the probe agree on
// acquisition counts under concurrent traffic.
func TestProbeConcurrentCounts(t *testing.T) {
	var l FCFSRWMutex
	p := &countProbe{}
	l.SetProbe(p)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		write := i%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if write {
					l.Lock()
					l.Unlock()
				} else {
					l.RLock()
					l.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
	ws := l.WaitStats()
	if p.acqR.Load() != ws.AcquiredR || p.acqW.Load() != ws.AcquiredW {
		t.Fatalf("probe acq R=%d W=%d, WaitStats %+v", p.acqR.Load(), p.acqW.Load(), ws)
	}
	if ws.AcquiredR != 4*500 || ws.AcquiredW != 4*500 {
		t.Fatalf("acquired R=%d W=%d, want 2000/2000", ws.AcquiredR, ws.AcquiredW)
	}
	if p.relR.Load() != 2000 || p.relW.Load() != 2000 {
		t.Fatalf("releases R=%d W=%d", p.relR.Load(), p.relW.Load())
	}
}
