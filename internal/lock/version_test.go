package lock

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pair is the "node" the seqlock stress protects: an immutable snapshot
// whose fields are tied together (b must equal a*2 and gen must match
// the generation that published it). A torn or stale read shows up as a
// broken tie.
type pair struct {
	gen uint64
	a   uint64
	b   uint64
}

func TestVersionLockParityAndMonotonicity(t *testing.T) {
	var l VersionLock
	if v := l.Version(); v != 0 {
		t.Fatalf("fresh version = %d", v)
	}
	last := uint64(0)
	for i := 0; i < 100; i++ {
		l.LockV()
		if v := l.Version(); v&1 != 1 {
			t.Fatalf("version %d even while writer holds the lock", v)
		}
		l.UnlockV()
		v := l.Version()
		if v&1 != 0 {
			t.Fatalf("version %d odd after release", v)
		}
		if v != last+2 {
			t.Fatalf("version advanced %d -> %d; want +2 per write", last, v)
		}
		last = v
	}
}

func TestVersionLockReadBeginValidate(t *testing.T) {
	var l VersionLock
	v, ok := l.ReadBegin()
	if !ok || v != 0 {
		t.Fatalf("ReadBegin on idle lock = (%d, %v)", v, ok)
	}
	if !l.Validate(v) {
		t.Fatal("Validate failed with no writer")
	}
	l.LockV()
	if _, ok := l.ReadBegin(); ok {
		t.Fatal("ReadBegin reported stable while a writer holds the lock")
	}
	if l.Validate(v) {
		t.Fatal("Validate passed across a writer acquire")
	}
	l.UnlockV()
	if l.Validate(v) {
		t.Fatal("Validate passed across a completed write")
	}
}

// TestVersionLockSeqlockProperties is the randomized seqlock stress:
// writers mutate a snapshot-published pair under LockV/UnlockV while
// checking the version is odd exactly inside their critical sections;
// latch-free readers run the ReadBegin/Validate protocol and check that
// every validated snapshot is untorn (b == a*2), stamped with the exact
// generation their validated version implies, and that observed versions
// are monotone per reader. Run under -race this also proves the
// snapshot-pointer discipline makes the reads well-defined.
func TestVersionLockSeqlockProperties(t *testing.T) {
	var (
		l    VersionLock
		snap atomic.Pointer[pair]
		stop atomic.Bool
	)
	snap.Store(&pair{})

	writers := 4
	readers := runtime.GOMAXPROCS(0)
	if readers < 4 {
		readers = 4
	}
	var wg sync.WaitGroup
	var validated, restarted atomic.Int64

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				l.LockV()
				v := l.Version()
				if v&1 != 1 {
					t.Errorf("writer observed even version %d inside critical section", v)
				}
				a := rng.Uint64() >> 1
				// Publish the new snapshot before UnlockV: version-even
				// must imply snapshot-current.
				snap.Store(&pair{gen: (v + 1) / 2, a: a, b: a * 2})
				l.UnlockV()
				if rng.Intn(4) == 0 {
					runtime.Gosched()
				}
			}
		}(int64(w) + 1)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastV uint64
			for !stop.Load() {
				v, ok := l.ReadBegin()
				if !ok {
					restarted.Add(1)
					continue
				}
				if v < lastV {
					t.Errorf("version went backwards: %d after %d", v, lastV)
				}
				lastV = v
				p := snap.Load()
				if !l.Validate(v) {
					restarted.Add(1)
					continue
				}
				validated.Add(1)
				if p.b != p.a*2 {
					t.Errorf("torn read: validated snapshot {a:%d b:%d}", p.a, p.b)
				}
				if p.gen != v/2 {
					t.Errorf("stale read: validated at version %d but snapshot generation %d", v, p.gen)
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if validated.Load() == 0 {
		t.Fatal("no reader ever validated a snapshot")
	}
	if restarted.Load() == 0 {
		t.Log("no read ever restarted (low contention this run); properties still hold")
	}
	if v := l.Version(); v&1 != 0 {
		t.Fatalf("final version %d odd with no writer", v)
	}
}

// TestVersionLockFallbackCompatibility checks the two disciplines
// compose: a reader holding the embedded R lock (the fallback path)
// excludes writers, so the version cannot change under it.
func TestVersionLockFallbackCompatibility(t *testing.T) {
	var l VersionLock
	l.RLock()
	v := l.Version()
	done := make(chan struct{})
	go func() {
		l.LockV()
		l.UnlockV()
		close(done)
	}()
	// The writer must be queued behind our R lock.
	time.Sleep(10 * time.Millisecond)
	if !l.Validate(v) {
		t.Fatal("version changed while an R lock was held")
	}
	l.RUnlock()
	<-done
	if l.Version() != v+2 {
		t.Fatalf("writer did not advance version: %d -> %d", v, l.Version())
	}
}
