package lock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExclusiveWriters(t *testing.T) {
	var l FCFSRWMutex
	var active, violations, total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Lock()
				if active.Add(1) != 1 {
					violations.Add(1)
				}
				active.Add(-1)
				total.Add(1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual exclusion violations", violations.Load())
	}
	if total.Load() != 16*500 {
		t.Fatalf("completed %d", total.Load())
	}
}

func TestReadersShare(t *testing.T) {
	var l FCFSRWMutex
	var concurrent, peak atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			l.RLock()
			c := concurrent.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			concurrent.Add(-1)
			l.RUnlock()
		}()
	}
	close(start)
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("readers never overlapped (peak %d)", peak.Load())
	}
}

func TestWriterExcludesReaders(t *testing.T) {
	var l FCFSRWMutex
	var inWrite atomic.Bool
	var violations atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			l.Lock()
			inWrite.Store(true)
			time.Sleep(time.Microsecond)
			inWrite.Store(false)
			l.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			l.RLock()
			if inWrite.Load() {
				violations.Add(1)
			}
			l.RUnlock()
		}
	}()
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d reader/writer overlaps", violations.Load())
	}
}

// TestFCFSOrder verifies that a reader arriving after a queued writer does
// not jump the queue.
func TestFCFSOrder(t *testing.T) {
	var l FCFSRWMutex
	l.RLock() // hold shared

	writerGranted := make(chan struct{})
	go func() {
		l.Lock() // queues behind the reader
		close(writerGranted)
		time.Sleep(10 * time.Millisecond)
		l.Unlock()
	}()
	// Wait until the writer is queued.
	for {
		if _, w := l.Contended(); w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	readerGranted := make(chan struct{})
	go func() {
		l.RLock() // must wait behind the queued writer
		close(readerGranted)
		l.RUnlock()
	}()
	// Give the late reader a chance to (incorrectly) jump the queue.
	time.Sleep(5 * time.Millisecond)
	select {
	case <-readerGranted:
		t.Fatal("late reader jumped a queued writer")
	default:
	}

	l.RUnlock() // writer should now get the lock first
	<-writerGranted
	<-readerGranted
}

func TestReaderBatchAfterWriter(t *testing.T) {
	var l FCFSRWMutex
	l.Lock()
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.RLock()
			granted.Add(1)
			time.Sleep(5 * time.Millisecond)
			l.RUnlock()
		}()
	}
	for {
		if r, _ := l.Contended(); r == 5 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	l.Unlock()
	// All five readers should be granted as one batch.
	time.Sleep(2 * time.Millisecond)
	if g := granted.Load(); g != 5 {
		t.Fatalf("batch granted %d of 5 readers", g)
	}
	wg.Wait()
}

func TestUnlockValidation(t *testing.T) {
	var l FCFSRWMutex
	for _, f := range []func(){l.Unlock, l.RUnlock} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad unlock did not panic")
				}
			}()
			f()
		}()
	}
}

func TestTryLock(t *testing.T) {
	var l FCFSRWMutex
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	l.RLock()
	if l.TryLock() {
		t.Fatal("TryLock over readers succeeded")
	}
	l.RUnlock()
}

func TestMixedStress(t *testing.T) {
	var l FCFSRWMutex
	var data int64
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		write := i%3 == 0
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				if write {
					l.Lock()
					data++
					l.Unlock()
				} else {
					l.RLock()
					_ = data
					l.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
	if data != 4*2000 {
		t.Fatalf("data = %d, want %d (lost updates)", data, 4*2000)
	}
}
