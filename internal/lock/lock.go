// Package lock provides a strictly first-come-first-served reader/writer
// mutex for real goroutines — the real-time counterpart of the FCFS lock
// queues in the paper's model (and of des.RWLock in the simulator).
//
// Unlike sync.RWMutex, whose acquisition order under contention is
// unspecified, FCFSRWMutex grants requests in arrival order: a reader that
// arrives behind a queued writer waits for that writer even though it is
// compatible with the current holders. This is the discipline the paper's
// analysis assumes, and it is starvation-free for both classes.
package lock

import (
	"sync"
	"sync/atomic"
)

// FCFSRWMutex is a fair FIFO reader/writer mutex. The zero value is ready
// to use. It must not be copied after first use.
type FCFSRWMutex struct {
	mu      sync.Mutex
	readers int  // active readers
	writer  bool // active writer
	queue   []*waiter

	contendedR atomic.Int64
	contendedW atomic.Int64
}

type waiter struct {
	ready chan struct{}
	write bool
}

// RLock acquires the lock shared. It blocks while a writer holds the lock
// or any request (of either class) is queued ahead.
func (l *FCFSRWMutex) RLock() {
	l.mu.Lock()
	if !l.writer && len(l.queue) == 0 {
		l.readers++
		l.mu.Unlock()
		return
	}
	w := &waiter{ready: make(chan struct{}), write: false}
	l.queue = append(l.queue, w)
	l.mu.Unlock()
	l.contendedR.Add(1)
	<-w.ready
}

// RUnlock releases a shared hold.
func (l *FCFSRWMutex) RUnlock() {
	l.mu.Lock()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("lock: RUnlock without RLock")
	}
	l.readers--
	l.dispatchLocked()
	l.mu.Unlock()
}

// Lock acquires the lock exclusive, in FIFO order.
func (l *FCFSRWMutex) Lock() {
	l.mu.Lock()
	if !l.writer && l.readers == 0 && len(l.queue) == 0 {
		l.writer = true
		l.mu.Unlock()
		return
	}
	w := &waiter{ready: make(chan struct{}), write: true}
	l.queue = append(l.queue, w)
	l.mu.Unlock()
	l.contendedW.Add(1)
	<-w.ready
}

// Unlock releases an exclusive hold.
func (l *FCFSRWMutex) Unlock() {
	l.mu.Lock()
	if !l.writer {
		l.mu.Unlock()
		panic("lock: Unlock without Lock")
	}
	l.writer = false
	l.dispatchLocked()
	l.mu.Unlock()
}

// dispatchLocked grants the longest-waiting compatible prefix of the
// queue: one writer, or a run of readers up to the first queued writer.
// Called with l.mu held.
func (l *FCFSRWMutex) dispatchLocked() {
	if l.writer {
		return
	}
	granted := 0
	for _, w := range l.queue {
		if w.write {
			if granted == 0 && l.readers == 0 {
				l.writer = true
				close(w.ready)
				granted = 1
			}
			break
		}
		l.readers++
		close(w.ready)
		granted++
	}
	if granted > 0 {
		l.queue = l.queue[granted:]
	}
}

// Contended reports how many acquisitions of each class had to queue.
func (l *FCFSRWMutex) Contended() (r, w int64) {
	return l.contendedR.Load(), l.contendedW.Load()
}

// TryLock acquires the exclusive lock only if it is immediately available
// and no request is queued.
func (l *FCFSRWMutex) TryLock() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writer || l.readers > 0 || len(l.queue) > 0 {
		return false
	}
	l.writer = true
	return true
}
