// Package lock provides a strictly first-come-first-served reader/writer
// mutex for real goroutines — the real-time counterpart of the FCFS lock
// queues in the paper's model (and of des.RWLock in the simulator).
//
// Unlike sync.RWMutex, whose acquisition order under contention is
// unspecified, FCFSRWMutex grants requests in arrival order: a reader that
// arrives behind a queued writer waits for that writer even though it is
// compatible with the current holders. This is the discipline the paper's
// analysis assumes, and it is starvation-free for both classes.
//
// Because the lock queue IS the object the paper analyzes, the mutex also
// measures itself: every instance counts acquisitions and accumulates
// queue-wait nanoseconds per class (see WaitStats), and an optional Probe
// can stream wait, hold-time, and writer-presence telemetry into a shared
// per-level accumulator so a live system can estimate the model's λ_r,
// λ_w, μ_r, μ_w, and ρ_w from its own lock queues.
package lock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Probe receives telemetry from one or more FCFSRWMutexes (typically all
// node locks of one B-tree level share a Probe). Implementations must be
// safe for concurrent use and cheap: Held and WriterPresence are called
// with the mutex's internal spinlock held.
type Probe interface {
	// Acquired is called once per acquisition. waitNs is the time the
	// request spent queued; an uncontended acquire reports 0.
	Acquired(write bool, waitNs int64)
	// Held is called once per release with the lock-hold nanoseconds
	// accrued by that class since the previous release (the integral of
	// the active-holder count, so the per-class sum over all calls equals
	// the sum of individual hold times and the call count equals the
	// number of completed holds).
	Held(write bool, heldNs int64)
	// WriterPresence reports nanoseconds during which at least one writer
	// was active or queued — the measured counterpart of the model's ρ_w
	// when divided by elapsed wall-clock time.
	WriterPresence(ns int64)
}

// monoBase anchors an allocation-free monotonic clock: time.Since on a
// time.Time with a monotonic reading compiles to a nanotime call.
var monoBase = time.Now()

func nanotime() int64 { return int64(time.Since(monoBase)) }

// FCFSRWMutex is a fair FIFO reader/writer mutex. The zero value is ready
// to use. It must not be copied after first use.
type FCFSRWMutex struct {
	mu      sync.Mutex
	readers int  // active readers
	writer  bool // active writer
	queue   []*waiter

	acquiredR  atomic.Int64
	acquiredW  atomic.Int64
	contendedR atomic.Int64
	contendedW atomic.Int64
	waitNsR    atomic.Int64
	waitNsW    atomic.Int64

	// Probe state, guarded by mu and active only when probe != nil.
	probe      Probe
	holdStamp  int64 // last transition of (readers, writer)
	pendR      int64 // reader hold ns accrued since the last reader release
	pendW      int64 // writer hold ns accrued since the last writer release
	wPresent   int   // writers active or queued
	wPresStamp int64 // when wPresent last rose above 0 or was last flushed
}

type waiter struct {
	ready chan struct{}
	write bool
	t0    int64 // enqueue time (nanotime), for queue-wait measurement
}

// SetProbe attaches a telemetry probe. It must be called before the mutex
// is used concurrently (e.g. right after creating the structure the lock
// guards); passing nil detaches. The probe adds one clock read per
// lock-state transition; without a probe only the always-on WaitStats
// counters are maintained.
func (l *FCFSRWMutex) SetProbe(p Probe) {
	l.mu.Lock()
	l.probe = p
	// Re-anchor the integrals so a probe attached to a live lock does not
	// inherit time accrued before attachment.
	now := nanotime()
	l.holdStamp = now
	l.wPresStamp = now
	l.pendR, l.pendW = 0, 0
	l.wPresent = 0
	if l.writer {
		l.wPresent++
	}
	for _, w := range l.queue {
		if w.write {
			l.wPresent++
		}
	}
	l.mu.Unlock()
}

// chargeHoldLocked accrues hold time for the classes active since the last
// transition. Called with l.mu held, only when l.probe != nil.
func (l *FCFSRWMutex) chargeHoldLocked(now int64) {
	dt := now - l.holdStamp
	if dt > 0 {
		l.pendR += int64(l.readers) * dt
		if l.writer {
			l.pendW += dt
		}
	}
	l.holdStamp = now
}

// writerArrivedLocked notes a writer entering the system (active or
// queued), flushing the presence integral so it stays fresh under
// sustained load. Called with l.mu held, only when l.probe != nil.
func (l *FCFSRWMutex) writerArrivedLocked(now int64) {
	if l.wPresent == 0 {
		l.wPresStamp = now
	} else {
		l.probe.WriterPresence(now - l.wPresStamp)
		l.wPresStamp = now
	}
	l.wPresent++
}

// writerGoneLocked notes a writer leaving the system (release, since a
// queued writer always becomes active). Called with l.mu held, only when
// l.probe != nil.
func (l *FCFSRWMutex) writerGoneLocked(now int64) {
	l.probe.WriterPresence(now - l.wPresStamp)
	l.wPresStamp = now
	l.wPresent--
}

// RLock acquires the lock shared. It blocks while a writer holds the lock
// or any request (of either class) is queued ahead.
func (l *FCFSRWMutex) RLock() {
	l.mu.Lock()
	if !l.writer && len(l.queue) == 0 {
		if p := l.probe; p != nil {
			l.chargeHoldLocked(nanotime())
			l.readers++
			l.mu.Unlock()
			l.acquiredR.Add(1)
			p.Acquired(false, 0)
			return
		}
		l.readers++
		l.mu.Unlock()
		l.acquiredR.Add(1)
		return
	}
	w := &waiter{ready: make(chan struct{}), write: false, t0: nanotime()}
	l.queue = append(l.queue, w)
	p := l.probe
	l.mu.Unlock()
	l.contendedR.Add(1)
	<-w.ready
	wait := nanotime() - w.t0
	l.acquiredR.Add(1)
	l.waitNsR.Add(wait)
	if p != nil {
		p.Acquired(false, wait)
	}
}

// RUnlock releases a shared hold.
func (l *FCFSRWMutex) RUnlock() {
	l.mu.Lock()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("lock: RUnlock without RLock")
	}
	if p := l.probe; p != nil {
		l.chargeHoldLocked(nanotime())
		l.readers--
		p.Held(false, l.pendR)
		l.pendR = 0
	} else {
		l.readers--
	}
	l.dispatchLocked()
	l.mu.Unlock()
}

// Lock acquires the lock exclusive, in FIFO order.
func (l *FCFSRWMutex) Lock() {
	l.mu.Lock()
	if !l.writer && l.readers == 0 && len(l.queue) == 0 {
		if p := l.probe; p != nil {
			now := nanotime()
			l.chargeHoldLocked(now)
			l.writer = true
			l.writerArrivedLocked(now)
			l.mu.Unlock()
			l.acquiredW.Add(1)
			p.Acquired(true, 0)
			return
		}
		l.writer = true
		l.mu.Unlock()
		l.acquiredW.Add(1)
		return
	}
	w := &waiter{ready: make(chan struct{}), write: true, t0: nanotime()}
	l.queue = append(l.queue, w)
	p := l.probe
	if p != nil {
		l.writerArrivedLocked(w.t0)
	}
	l.mu.Unlock()
	l.contendedW.Add(1)
	<-w.ready
	wait := nanotime() - w.t0
	l.acquiredW.Add(1)
	l.waitNsW.Add(wait)
	if p != nil {
		p.Acquired(true, wait)
	}
}

// Unlock releases an exclusive hold.
func (l *FCFSRWMutex) Unlock() {
	l.mu.Lock()
	if !l.writer {
		l.mu.Unlock()
		panic("lock: Unlock without Lock")
	}
	if p := l.probe; p != nil {
		now := nanotime()
		l.chargeHoldLocked(now)
		l.writer = false
		p.Held(true, l.pendW)
		l.pendW = 0
		l.writerGoneLocked(now)
	} else {
		l.writer = false
	}
	l.dispatchLocked()
	l.mu.Unlock()
}

// dispatchLocked grants the longest-waiting compatible prefix of the
// queue: one writer, or a run of readers up to the first queued writer.
// Called with l.mu held.
func (l *FCFSRWMutex) dispatchLocked() {
	if l.writer {
		return
	}
	granted := 0
	for _, w := range l.queue {
		if w.write {
			if granted == 0 && l.readers == 0 {
				if l.probe != nil {
					l.chargeHoldLocked(nanotime())
				}
				l.writer = true
				close(w.ready)
				granted = 1
			}
			break
		}
		if l.probe != nil && granted == 0 {
			l.chargeHoldLocked(nanotime())
		}
		l.readers++
		close(w.ready)
		granted++
	}
	if granted > 0 {
		l.queue = l.queue[granted:]
	}
}

// Contended reports how many acquisitions of each class had to queue.
func (l *FCFSRWMutex) Contended() (r, w int64) {
	return l.contendedR.Load(), l.contendedW.Load()
}

// WaitStats is a snapshot of a mutex's always-on counters.
type WaitStats struct {
	AcquiredR  int64 // shared acquisitions
	AcquiredW  int64 // exclusive acquisitions
	ContendedR int64 // shared acquisitions that queued
	ContendedW int64 // exclusive acquisitions that queued
	WaitNsR    int64 // cumulative shared queue-wait nanoseconds
	WaitNsW    int64 // cumulative exclusive queue-wait nanoseconds
}

// WaitStats returns a snapshot of the acquisition and queue-wait counters.
// The fields are loaded individually, so the snapshot is not a consistent
// cut under concurrent traffic — each counter is exact, their relative
// skew is bounded by in-flight operations.
func (l *FCFSRWMutex) WaitStats() WaitStats {
	return WaitStats{
		AcquiredR:  l.acquiredR.Load(),
		AcquiredW:  l.acquiredW.Load(),
		ContendedR: l.contendedR.Load(),
		ContendedW: l.contendedW.Load(),
		WaitNsR:    l.waitNsR.Load(),
		WaitNsW:    l.waitNsW.Load(),
	}
}

// TryLock acquires the exclusive lock only if it is immediately available
// and no request is queued.
func (l *FCFSRWMutex) TryLock() bool {
	l.mu.Lock()
	if l.writer || l.readers > 0 || len(l.queue) > 0 {
		l.mu.Unlock()
		return false
	}
	p := l.probe
	if p != nil {
		now := nanotime()
		l.chargeHoldLocked(now)
		l.writer = true
		l.writerArrivedLocked(now)
	} else {
		l.writer = true
	}
	l.mu.Unlock()
	l.acquiredW.Add(1)
	if p != nil {
		p.Acquired(true, 0)
	}
	return true
}
