package core

import (
	"fmt"

	"btreeperf/internal/shape"
)

// BufferedCosts derives a cost model in which the sharp "top MemLevels in
// memory" assumption is replaced by an LRU buffer pool of bufferNodes
// node-sized frames — the "LRU buffering" analysis the paper defers to its
// full version (§8).
//
// The approximation: a level-i node is accessed at per-node rate
// λ/population(i), so upper levels are hotter by exactly their population
// ratio and steady-state LRU retains levels top-down. The pool therefore
// caches whole levels from the root downward, with at most one level
// partially resident; a level's miss probability is the un-cached fraction
// of its population (searches within a level are uniform).
//
// The derived model plugs into every analysis and into the simulator
// unchanged, and its per-level hit ratios are directly comparable with the
// measured CacheStats of internal/diskbtree's real LRU pool.
func BufferedCosts(s *shape.Model, bufferNodes float64, base CostModel) (CostModel, error) {
	if s == nil {
		return CostModel{}, fmt.Errorf("core: nil shape")
	}
	if err := base.Validate(); err != nil {
		return CostModel{}, err
	}
	if bufferNodes < 0 {
		return CostModel{}, fmt.Errorf("core: negative buffer size %v", bufferNodes)
	}
	h := s.Height
	pop := LevelPopulations(s)
	miss := make([]float64, h+1)
	remaining := bufferNodes
	for i := h; i >= 1; i-- {
		cached := pop[i]
		if cached > remaining {
			cached = remaining
		}
		miss[i] = 1 - cached/pop[i]
		remaining -= cached
	}
	out := base
	out.MissProb = miss
	return out, nil
}

// LevelPopulations returns the expected node count per level (index i =
// level i, index 0 unused): one root, multiplying by the fanout going
// down.
func LevelPopulations(s *shape.Model) []float64 {
	h := s.Height
	pop := make([]float64, h+1)
	pop[h] = 1
	for i := h - 1; i >= 1; i-- {
		pop[i] = pop[i+1] * s.E(i+1)
	}
	return pop
}

// ExpectedHitRatio returns the model's buffer hit ratio for a uniform
// search workload: each search touches one node per level.
func ExpectedHitRatio(s *shape.Model, c CostModel) float64 {
	h := s.Height
	hits := 0.0
	for i := 1; i <= h; i++ {
		hits += 1 - c.MissAt(i, h)
	}
	return hits / float64(h)
}
