package core

import (
	"math"
	"testing"

	"btreeperf/internal/workload"
)

func TestOLCZeroLoad(t *testing.T) {
	m := paperModel(t, 5)
	res, err := AnalyzeOLC(m, paperWorkload(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("OLC unstable at zero load")
	}
	// No writers in sight: descents never restart, responses are the
	// bare path costs.
	if res.RestartProb > 1e-6 || res.FallbackProb > 1e-9 {
		t.Errorf("restart %v fallback %v at zero load", res.RestartProb, res.FallbackProb)
	}
	var path float64
	h := m.Shape.Height
	for i := 1; i <= h; i++ {
		path += m.Costs.Se(i, h)
	}
	if math.Abs(res.RespSearch-path) > 1e-3*path {
		t.Errorf("RespSearch %v, want ≈ %v", res.RespSearch, path)
	}
}

func TestOLCBeatsLinkOnSearchResponse(t *testing.T) {
	// The point of latch-free reads: searches skip every R-lock wait.
	// Under contention the OLC search response must undercut Link's at
	// the same operating point — and the gap must widen with load, since
	// Link's queueing waits grow superlinearly while OLC restarts grow
	// roughly linearly. At trivially low load the two are equal to within
	// a fraction of a percent (the rare correlated fallback is priced,
	// the nonexistent queue wait is not).
	m := paperModel(t, 5)
	prevGap := 0.0
	for _, lambda := range []float64{25, 100, 250} {
		w := paperWorkload(lambda)
		olc, err := AnalyzeOLC(m, w)
		if err != nil {
			t.Fatal(err)
		}
		link, err := AnalyzeLink(m, w)
		if err != nil {
			t.Fatal(err)
		}
		if !olc.Stable || !link.Stable {
			t.Fatalf("λ=%v unstable (olc %v link %v)", lambda, olc.Stable, link.Stable)
		}
		if olc.RespSearch >= link.RespSearch {
			t.Errorf("λ=%v: OLC search %v not below Link %v", lambda, olc.RespSearch, link.RespSearch)
		}
		gap := link.RespSearch - olc.RespSearch
		if gap <= prevGap {
			t.Errorf("λ=%v: gap %v did not widen (was %v)", lambda, gap, prevGap)
		}
		prevGap = gap
	}
	low := paperWorkload(0.1)
	olc, err := AnalyzeOLC(m, low)
	if err != nil {
		t.Fatal(err)
	}
	link, err := AnalyzeLink(m, low)
	if err != nil {
		t.Fatal(err)
	}
	if olc.RespSearch > 1.001*link.RespSearch {
		t.Errorf("low load: OLC search %v more than 0.1%% above Link %v", olc.RespSearch, link.RespSearch)
	}
}

func TestOLCRestartProbMonotone(t *testing.T) {
	m := paperModel(t, 5)
	prev := -1.0
	for _, lambda := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		res, err := AnalyzeOLC(m, paperWorkload(lambda))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stable {
			break
		}
		if res.RestartProb < prev {
			t.Errorf("λ=%v: restart probability %v fell below %v", lambda, res.RestartProb, prev)
		}
		if res.RestartProb < 0 || res.RestartProb > 1 || res.FallbackProb > res.RestartProb {
			t.Errorf("λ=%v: implausible restart %v / fallback %v", lambda, res.RestartProb, res.FallbackProb)
		}
		for i := 1; i <= m.Shape.Height; i++ {
			if p := res.ReadConflict[i]; p < 0 || p > 1 {
				t.Errorf("λ=%v level %d: conflict probability %v", lambda, i, p)
			}
		}
		prev = res.RestartProb
	}
}

func TestOLCMaxThroughputAtLeastLink(t *testing.T) {
	// OLC removes reader traffic from the queues without adding writer
	// work, so its stability boundary cannot fall below Link's.
	m := paperModel(t, 5)
	mix := paperWorkload(0)
	olc, err := MaxThroughput(OLC, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	link, err := MaxThroughput(Link, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if olc < 0.99*link {
		t.Errorf("OLC max throughput %v below Link's %v", olc, link)
	}
}

func TestOLCReadOnlyNeverRestarts(t *testing.T) {
	m := paperModel(t, 5)
	res, err := AnalyzeOLC(m, Workload{Lambda: 0.5, Mix: workload.Mix{QS: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.RestartProb != 0 || res.RestartsPerOp != 0 {
		t.Errorf("read-only workload restarts: %v / %v", res.RestartProb, res.RestartsPerOp)
	}
	if !res.Stable {
		t.Error("read-only workload unstable")
	}
}

func TestOLCString(t *testing.T) {
	if OLC.String() != "olc" {
		t.Fatalf("OLC string %q", OLC.String())
	}
}
