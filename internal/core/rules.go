package core

import (
	"fmt"
	"math"
)

// The §6 rules of thumb approximate λ_{ρ=.5}, the "effective maximum
// arrival rate" at which the root's writer utilization reaches one half.
// They trade the full leaf-up queue solution for closed forms, giving the
// paper's design guidance: Naive Lock-coupling's effective maximum is
// independent of the node size (favor small nodes, whose roots are cheap
// to search), while Optimistic Descent's grows like N/log²N (favor the
// largest nodes available).

// RuleOfThumb1 is the Naive Lock-coupling approximation of λ_{ρ=.5}.
func RuleOfThumb1(m Model, mix Workload) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	s, c := m.Shape, m.Costs
	h := s.Height
	if h < 2 {
		return 0, fmt.Errorf("core: rule of thumb needs height >= 2")
	}
	qs := mix.Mix.QS
	qi, qd := mix.Mix.QI, mix.Mix.QD
	if qs >= 1 || qi+qd <= 0 {
		return 0, fmt.Errorf("core: rule of thumb needs updates in the mix")
	}
	eh := s.E(h)
	root := c.Se(h, h) * (1 + math.Log(1+qs/(2*(1-qs))))
	child := c.Se(2, h) * (1.5 + qs/(2*eh*(1-qs)))
	coupling := 1/(2*eh-1) + qi/(qi+qd)*s.PrF(h-1)
	return 1 / (2 * (1 - qs) * (root + coupling*child)), nil
}

// RuleOfThumb2 is the large-node, large-root-fanout limit of rule 1: the
// child terms vanish and only the root search matters — Naive
// Lock-coupling's effective maximum does not improve with node size.
func RuleOfThumb2(m Model, mix Workload) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	s, c := m.Shape, m.Costs
	qs := mix.Mix.QS
	if qs >= 1 {
		return 0, fmt.Errorf("core: rule of thumb needs updates in the mix")
	}
	h := s.Height
	return 1 / (2 * (1 - qs) * c.Se(h, h) * (1 + math.Log(1+qs/(2*(1-qs))))), nil
}

// RuleOfThumb3 is the Optimistic Descent approximation of λ_{ρ=.5}. The
// writer arrival rate is the redo rate q_i·Pr[F(1)]·λ, so the reader/
// writer ratio 1/(q_i·Pr[F(1)]) is large and the log terms are kept.
func RuleOfThumb3(m Model, mix Workload) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	s, c := m.Shape, m.Costs
	h := s.Height
	if h < 2 {
		return 0, fmt.Errorf("core: rule of thumb needs height >= 2")
	}
	qi, qd := mix.Mix.QI, mix.Mix.QD
	if qi <= 0 {
		return 0, fmt.Errorf("core: rule of thumb needs inserts in the mix")
	}
	pf := s.PrF(1)
	if pf <= 0 {
		return 0, fmt.Errorf("core: Pr[F(1)] = 0")
	}
	eh := s.E(h)
	root := c.Se(h, h) * (1 + math.Log(1+1/(2*qi*pf)))
	child := c.Se(2, h) * (1.5 + math.Log(1+1/(2*eh*qi*pf)))
	coupling := 1/(2*eh-1) + qi/(qi+qd)*s.PrF(h-1)
	return 1 / (2 * qi * pf * (root + coupling*child)), nil
}

// RuleOfThumb4 is the large-node limit of rule 3: λ_{ρ=.5} is inversely
// proportional to q_i·Pr[F(1)], i.e. grows roughly like N/log²N with the
// node size.
func RuleOfThumb4(m Model, mix Workload) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	s, c := m.Shape, m.Costs
	h := s.Height
	qi := mix.Mix.QI
	if qi <= 0 {
		return 0, fmt.Errorf("core: rule of thumb needs inserts in the mix")
	}
	pf := s.PrF(1)
	if pf <= 0 {
		return 0, fmt.Errorf("core: Pr[F(1)] = 0")
	}
	return 1 / (2 * qi * pf * c.Se(h, h) * (1 + math.Log(1+1/(2*qi*pf)))), nil
}
