package core

import (
	"math"
	"testing"
)

func TestTwoPhaseNoContentionLimit(t *testing.T) {
	m := paperModel(t, 5)
	res, err := AnalyzeTwoPhase(m, paperWorkload(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("vanishing load unstable")
	}
	// Serial costs match NLC's: Per(S) → 17, Per(D) → 22.
	if math.Abs(res.RespSearch-17) > 0.01 {
		t.Errorf("RespSearch = %v", res.RespSearch)
	}
	if math.Abs(res.RespDelete-22) > 0.01 {
		t.Errorf("RespDelete = %v", res.RespDelete)
	}
}

func TestTwoPhaseIsTheWorstProtocol(t *testing.T) {
	// 2PL never releases early, so its maximum throughput lower-bounds
	// Naive Lock-coupling's.
	m := paperModel(t, 5)
	mix := paperWorkload(0)
	tp, err := MaxThroughput(TwoPhase, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	nlc, err := MaxThroughput(NLC, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if tp >= nlc {
		t.Fatalf("2PL max %v should be below NLC max %v", tp, nlc)
	}
	if tp <= 0 {
		t.Fatalf("2PL max %v", tp)
	}
}

func TestTwoPhaseResponseDominatesNLC(t *testing.T) {
	m := paperModel(t, 5)
	mix := paperWorkload(0)
	tpMax, err := MaxThroughput(TwoPhase, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	w := paperWorkload(0.8 * tpMax)
	tp, err := AnalyzeTwoPhase(m, w)
	if err != nil {
		t.Fatal(err)
	}
	nlc, err := AnalyzeNLC(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Stable || !nlc.Stable {
		t.Fatal("stability at 0.8×2PL max")
	}
	if tp.RespInsert <= nlc.RespInsert {
		t.Errorf("2PL insert %v should exceed NLC %v at equal load", tp.RespInsert, nlc.RespInsert)
	}
	if tp.RespSearch <= nlc.RespSearch {
		t.Errorf("2PL search %v should exceed NLC %v at equal load", tp.RespSearch, nlc.RespSearch)
	}
}

func TestTwoPhaseSaturation(t *testing.T) {
	m := paperModel(t, 5)
	res, err := AnalyzeTwoPhase(m, paperWorkload(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Fatal("λ=10 should saturate 2PL")
	}
	if !math.IsInf(res.RespInsert, 1) {
		t.Fatal("saturated response should be +Inf")
	}
}

func TestTwoPhaseDispatch(t *testing.T) {
	m := paperModel(t, 5)
	res, err := Analyze(TwoPhase, m, paperWorkload(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != TwoPhase {
		t.Fatal("dispatch")
	}
	if TwoPhase.String() != "two-phase-locking" {
		t.Fatal("string")
	}
}
