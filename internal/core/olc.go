package core

import (
	"fmt"

	"btreeperf/internal/qmodel"
)

// OLCMaxAttempts bounds latch-free descent attempts before an OLC
// operation falls back to the locked Link-type path. Keep in sync with
// cbtree.olcMaxAttempts and the simulator's olcMaxAttempts: the analysis
// truncates the restart geometric series at the same depth.
const OLCMaxAttempts = 3

// AnalyzeOLC evaluates optimistic lock-coupling, the fourth algorithm.
//
// Writers behave exactly as in the Link-type analysis: W locks one node
// at a time, splits propagate upward, so λ_w(i) and the W service times
// are AnalyzeLink's. Readers descend latch-free, sampling each node's
// version word and re-validating after the read; the lock queues
// therefore see almost no reader traffic, and what the framework must
// price instead is the restart process:
//
//   - a validation of a level-i node fails if the node is write-locked
//     when the read begins (probability u_i = λ_w(i)/μ_w(i), the
//     writer utilization of the representative node) or a writer bumps
//     the version during the Se(i) read window (Poisson writer
//     arrivals: the no-conflict window survives with probability
//     1/(1 + λ_w(i)·Se(i))), giving
//
//     p_i = 1 − (1 − u_i)/(1 + λ_w(i)·Se(i));
//
//   - a whole descent restarts with probability
//     P = 1 − ∏(1 − p_i) — over levels 1..h for searches (the leaf is
//     validated too) and 2..h for updates (the leaf is W-locked, not
//     validated);
//
//   - retries are correlated, not independent: a failed attempt
//     re-walks to the same node at memory speed (a few time units)
//     while the conflicting writer's critical section (mean 1/μ_w,
//     exponential and memoryless) is usually still open, so a retry
//     fails again with probability
//
//     q = persist + (1 − persist)·P,
//     persist = Σ_ℓ w_ℓ · (1/μ_w(ℓ)) / (1/μ_w(ℓ) + t_r(ℓ)),
//
//     where w_ℓ is the probability the first failure was at level ℓ
//     and t_r(ℓ) the warm re-descent time back to it;
//
//   - attempts truncate at K = OLCMaxAttempts: the expected number of
//     failed descents is E[N] = P·(1 + q + … + q^{K−1}), and with
//     probability F = P·q^{K−1} the operation falls back to the locked
//     Link-type path, whose R locks queue behind writers in the
//     ordinary FCFS way. Only this fallback fraction contributes
//     reader arrivals to the level queues.
//
// A failed descent aborts at its first failed validation, so it is
// charged only the node accesses down to (and including) the failing
// level — at memory speed: the path it re-walks was faulted into the
// buffer by the preceding attempt, and an immediate re-access hits. The
// cold accesses are charged once, on the final (successful or fallback)
// pass at the full Se(i).
func AnalyzeOLC(m Model, w Workload) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	s := m.Shape
	c := m.Costs
	h := s.Height
	mix := w.Mix
	lam := levelLambdas(s, w.Lambda)

	res := &Result{Algorithm: OLC, Lambda: w.Lambda, Stable: true}
	res.Levels = make([]LevelResult, h)
	res.ReadConflict = make([]float64, h+1)

	// Writer rates and service times per level (AnalyzeLink's), and the
	// single-attempt validation-failure probabilities they induce. These
	// do not depend on the reader traffic, so no fixed point is needed:
	// conflicts first, then one queue solve with the fallback readers.
	lw := make([]float64, h+1)
	muW := make([]float64, h+1)
	for i := 1; i <= h; i++ {
		if i == 1 {
			lw[1] = (mix.QI + mix.QD) * lam[1]
			wi, wd := updateShares(mix.QI, mix.QD)
			tw := wi*(c.M(h)+s.PrF(1)*c.Sp(1, h)) +
				wd*(c.M(h)+s.PrEm(1)*c.Mg(1, h))
			if tw > 0 {
				muW[1] = 1 / tw
			}
		} else {
			lw[i] = mix.QI * s.ProdPrF(i-1) * lam[i]
			muW[i] = 1 / (c.Mod(i, h) + s.PrF(i)*c.Sp(i, h))
		}
		u := 0.0
		if muW[i] > 0 {
			u = lw[i] / muW[i]
		}
		if u >= 1 {
			res.saturateFrom(i, lam, mix.QS)
			return res, nil
		}
		res.ReadConflict[i] = 1 - (1-u)/(1+lw[i]*c.Se(i, h))
	}

	// Descent restart probabilities for the two descent classes, and the
	// correlated retry-failure probabilities: given a failure, the retry
	// returns to the failing node after the warm re-descent time t_r,
	// and the conflicting writer's (memoryless) critical section is
	// still open with probability (1/μ_w)/(1/μ_w + t_r).
	okSearch, okUpdate := 1.0, 1.0
	for i := 1; i <= h; i++ {
		okSearch *= 1 - res.ReadConflict[i]
		if i >= 2 {
			okUpdate *= 1 - res.ReadConflict[i]
		}
	}
	pS, pU := 1-okSearch, 1-okUpdate
	qS := retryFailProb(res.ReadConflict, muW, c, 1, h, pS)
	qU := retryFailProb(res.ReadConflict, muW, c, 2, h, pU)
	fbS := pS * powK(qS, OLCMaxAttempts-1)
	fbU := pU * powK(qU, OLCMaxAttempts-1)
	qu := mix.QI + mix.QD
	res.RestartProb = mix.QS*pS + qu*pU
	res.FallbackProb = mix.QS*fbS + qu*fbU
	res.RestartsPerOp = mix.QS*failedAttempts(pS, qS, OLCMaxAttempts) +
		qu*failedAttempts(pU, qU, OLCMaxAttempts)

	// Solve the level queues. Reader arrivals are the fallback fraction
	// only: a fallback search R-locks one node per level; a fallback
	// update R-locks the internal levels (its leaf lock is the W lock
	// already counted in λ_w).
	rWait := make([]float64, h+1)
	wWait := make([]float64, h+1)
	for i := 1; i <= h; i++ {
		var lr float64
		if i == 1 {
			lr = fbS * mix.QS * lam[1]
		} else {
			lr = (fbS*mix.QS + fbU*qu) * lam[i]
		}
		muR := 1 / c.Se(i, h)
		sol, err := qmodel.Solve(qmodel.Input{LambdaR: lr, LambdaW: lw[i], MuR: muR, MuW: muW[i]})
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", i, err)
		}
		if !sol.Stable {
			res.Stable = false
		}
		rWait[i] = qmodel.MM1Wait(sol.RhoW, sol.TA)
		wWait[i] = rWait[i] + sol.RhoW*sol.RU + (1-sol.RhoW)*sol.RE

		res.Levels[i-1] = LevelResult{
			Level: i, LambdaR: lr, LambdaW: lw[i], MuR: muR, MuW: muW[i],
			RhoW: sol.RhoW, RU: sol.RU, RE: sol.RE,
			R: rWait[i], W: wWait[i], Stable: sol.Stable,
		}
	}

	// Response times. A latch-free descent pays the node accesses but no
	// lock waits; a failed attempt aborts at its first failed validation
	// and repays only the prefix walked; the fallback fraction pays the
	// locked Link-type descent.
	searchPath, searchLocked := 0.0, 0.0
	for i := 1; i <= h; i++ {
		searchPath += c.Se(i, h)
		searchLocked += c.Se(i, h) + rWait[i]
	}
	failS := failedDescentCost(res.ReadConflict, c, 1, h)
	res.RespSearch = failedAttempts(pS, qS, OLCMaxAttempts)*failS +
		(1-fbS)*searchPath + fbS*searchLocked

	descPath, descLocked := 0.0, 0.0
	for i := 2; i <= h; i++ {
		descPath += c.Se(i, h)
		descLocked += c.Se(i, h) + rWait[i]
	}
	failU := failedDescentCost(res.ReadConflict, c, 2, h)
	update := failedAttempts(pU, qU, OLCMaxAttempts)*failU +
		(1-fbU)*descPath + fbU*descLocked +
		c.M(h) + wWait[1]
	res.RespInsert = update
	for j := 1; j <= h-1; j++ {
		res.RespInsert += s.ProdPrF(j) * (c.Sp(j, h) + wWait[j+1] + c.Mod(j+1, h))
	}
	res.RespDelete = update
	return res, nil
}

// failedDescentCost is the expected node-access cost of one failed
// latch-free descent over levels lo..h (conditioned on it failing): the
// descent walks h, h−1, …, lo, aborts at the first level whose
// validation fails, and pays the warm in-memory access time per visited
// node — its path is buffer-resident from the attempt that preceded it.
func failedDescentCost(p []float64, c CostModel, lo, h int) float64 {
	warm := c.SearchMem * c.Dilation
	var total, pFail, prefix float64
	okAbove := 1.0
	for i := h; i >= lo; i-- {
		prefix += warm
		w := okAbove * p[i] // first failure at level i
		total += w * prefix
		pFail += w
		okAbove *= 1 - p[i]
	}
	if pFail == 0 {
		return 0
	}
	return total / pFail
}

// retryFailProb is the probability a retry descent fails again given the
// previous attempt failed: the conflicting writer — at the level the
// failure happened, weighted by first-failure likelihood — is still in
// its critical section when the warm re-descent returns (exponential
// residual hold 1/μ_w vs. exponential re-walk time t_r), plus a fresh
// independent conflict.
func retryFailProb(p []float64, muW []float64, c CostModel, lo, h int, pClass float64) float64 {
	if pClass <= 0 {
		return 0
	}
	warm := c.SearchMem * c.Dilation
	var persist, pFail float64
	okAbove := 1.0
	for i := h; i >= lo; i-- {
		w := okAbove * p[i] // first failure at level i
		if muW[i] > 0 {
			hold := 1 / muW[i]
			tr := warm * float64(h-i+1)
			persist += w * hold / (hold + tr)
		}
		pFail += w
		okAbove *= 1 - p[i]
	}
	if pFail > 0 {
		persist /= pFail
	}
	q := persist + (1-persist)*pClass
	if q > 1 {
		q = 1
	}
	return q
}

// failedAttempts is the expected number of failed descents when the
// first fails with probability p, each retry fails with probability q,
// and attempts truncate at k: p·(1 + q + … + q^{k−1}).
func failedAttempts(p, q float64, k int) float64 {
	sum, qj := 0.0, 1.0
	for j := 0; j < k; j++ {
		sum += qj
		qj *= q
	}
	return p * sum
}

// powK is q^k without the math.Pow edge cases for q in [0, 1].
func powK(q float64, k int) float64 {
	r := 1.0
	for j := 0; j < k; j++ {
		r *= q
	}
	return r
}
