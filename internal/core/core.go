// Package core implements the analytical framework of Johnson & Shasha,
// "A Framework for the Performance Analysis of Concurrent B-tree
// Algorithms" (PODS 1990) — the paper's primary contribution.
//
// A concurrent B⁺-tree running algorithm A under an operation mix
// (q_s, q_i, q_d) at total arrival rate λ is modeled as an open network of
// FCFS reader/writer lock queues, one representative queue per tree level.
// For each level the framework computes arrival rates, lock-hold (service)
// times, and lock-waiting times, from which it predicts the expected
// response time of each operation class and the maximum sustainable
// throughput.
//
// Three algorithms are analyzed:
//
//   - Naive Lock-coupling (AnalyzeNLC) — Theorems 1–5 of the paper,
//   - Optimistic Descent (AnalyzeOD) — including the redo-insert class and
//     the recovery variants of §7,
//   - Link-type / Lehman–Yao (AnalyzeLink).
//
// The closed-form "rules of thumb" of §6 are in rules.go, and the maximum
// throughput and effective-maximum (ρ_w = .5) solvers in throughput.go.
package core

import (
	"fmt"
	"math"

	"btreeperf/internal/shape"
	"btreeperf/internal/workload"
)

// CostModel parameterizes the serial node-access costs of §5.3: the time
// to search the root is the unit of time; nodes on disk cost DiskCost
// times an in-memory access; modifying a leaf costs ModifyFactor leaf
// searches; splitting a node costs SplitFactor node searches (including
// the parent update).
type CostModel struct {
	SearchMem    float64 // in-memory node search time (the paper's unit: 1)
	DiskCost     float64 // on-disk access multiplier (the paper's D)
	MemLevels    int     // number of top levels held in memory
	ModifyFactor float64 // modify cost / search cost (paper: 2)
	SplitFactor  float64 // split cost / search cost (paper: 3)
	MergeFactor  float64 // merge cost / search cost (paper uses splits' 3)
	Dilation     float64 // resource-contention service-time dilation (§5.2)

	// MissProb, when non-nil, replaces the sharp MemLevels split with
	// per-level buffer-pool miss probabilities (index i = tree level i;
	// index 0 unused): Se(i) = SearchMem·(1 + MissProb[i]·(DiskCost−1)).
	// Use BufferedCosts to derive it from a tree shape and an LRU pool
	// size — the "LRU buffering" extension the paper defers to its full
	// version (§8).
	MissProb []float64
}

// PaperCosts is the cost model of the paper's experiments with disk
// cost D: Se(root)=1, two in-memory levels, M=2·Se(leaf), Sp=3·Se.
func PaperCosts(d float64) CostModel {
	return CostModel{
		SearchMem:    1,
		DiskCost:     d,
		MemLevels:    2,
		ModifyFactor: 2,
		SplitFactor:  3,
		MergeFactor:  3,
		Dilation:     1,
	}
}

// Validate checks the cost model.
func (c CostModel) Validate() error {
	if c.SearchMem <= 0 {
		return fmt.Errorf("core: SearchMem %v", c.SearchMem)
	}
	if c.DiskCost < 1 {
		return fmt.Errorf("core: DiskCost %v < 1", c.DiskCost)
	}
	if c.MemLevels < 0 {
		return fmt.Errorf("core: MemLevels %d", c.MemLevels)
	}
	if c.ModifyFactor <= 0 || c.SplitFactor <= 0 || c.MergeFactor <= 0 {
		return fmt.Errorf("core: non-positive cost factor %+v", c)
	}
	if c.Dilation <= 0 {
		return fmt.Errorf("core: Dilation %v", c.Dilation)
	}
	return nil
}

// onDisk reports whether level i of an h-level tree resides on disk.
func (c CostModel) onDisk(i, h int) bool { return i <= h-c.MemLevels }

// Se returns the expected time to search a level-i node of an h-level tree.
func (c CostModel) Se(i, h int) float64 {
	t := c.SearchMem
	switch {
	case c.MissProb != nil:
		miss := 1.0 // levels beyond the modeled shape are assumed cold
		if i < len(c.MissProb) {
			miss = c.MissProb[i]
		}
		t *= 1 + miss*(c.DiskCost-1)
	case c.onDisk(i, h):
		t *= c.DiskCost
	}
	return t * c.Dilation
}

// MissAt returns the buffer-miss probability the model charges level i of
// an h-level tree (1 for on-disk levels and 0 for in-memory ones when
// MissProb is unset).
func (c CostModel) MissAt(i, h int) float64 {
	if c.MissProb != nil {
		if i < len(c.MissProb) {
			return c.MissProb[i]
		}
		return 1
	}
	if c.onDisk(i, h) {
		return 1
	}
	return 0
}

// M returns the expected time to modify a leaf of an h-level tree.
func (c CostModel) M(h int) float64 { return c.ModifyFactor * c.Se(1, h) }

// Mod returns the expected time to modify a level-i node (pointer insertion
// under the Link-type algorithm).
func (c CostModel) Mod(i, h int) float64 { return c.ModifyFactor * c.Se(i, h) }

// Sp returns the expected time to split a level-i node (the parent update
// is included, per the paper).
func (c CostModel) Sp(i, h int) float64 { return c.SplitFactor * c.Se(i, h) }

// Mg returns the expected time to merge (remove) a level-i node.
func (c CostModel) Mg(i, h int) float64 { return c.MergeFactor * c.Se(i, h) }

// Workload is the offered load: total arrival rate λ and the operation mix.
type Workload struct {
	Lambda float64
	Mix    workload.Mix
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if w.Lambda < 0 {
		return fmt.Errorf("core: negative arrival rate %v", w.Lambda)
	}
	return w.Mix.Validate()
}

// Model bundles the tree shape and the cost model — everything about the
// system except the offered load.
type Model struct {
	Shape *shape.Model
	Costs CostModel
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.Shape == nil {
		return fmt.Errorf("core: nil shape")
	}
	return m.Costs.Validate()
}

// Algorithm identifies a concurrency-control algorithm.
type Algorithm int

const (
	// NLC is Naive Lock-coupling (Bayer & Schkolnick).
	NLC Algorithm = iota
	// OD is Optimistic Descent.
	OD
	// Link is the Link-type (Lehman–Yao) algorithm.
	Link
	// TwoPhase is strict Two-Phase Locking on the whole descent path —
	// the additional algorithm the paper defers to its full version.
	TwoPhase
	// OLC is optimistic lock-coupling: version-validated latch-free
	// descents with bounded retry over a Link-type writer protocol — the
	// fourth algorithm, beyond the paper's original three.
	OLC
)

func (a Algorithm) String() string {
	switch a {
	case NLC:
		return "naive-lock-coupling"
	case OD:
		return "optimistic-descent"
	case Link:
		return "link-type"
	case TwoPhase:
		return "two-phase-locking"
	case OLC:
		return "olc"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// RecoveryPolicy selects the §7 recovery protocol layered on an algorithm.
type RecoveryPolicy int

const (
	// NoRecovery releases every lock as the algorithm dictates.
	NoRecovery RecoveryPolicy = iota
	// LeafOnly holds leaf W locks until transaction commit.
	LeafOnly
	// NaiveRecovery holds every W lock until transaction commit.
	NaiveRecovery
)

func (r RecoveryPolicy) String() string {
	switch r {
	case NoRecovery:
		return "none"
	case LeafOnly:
		return "leaf-only"
	case NaiveRecovery:
		return "naive"
	default:
		return fmt.Sprintf("RecoveryPolicy(%d)", int(r))
	}
}

// LevelResult is the solved operating point of one level's lock queue.
type LevelResult struct {
	Level   int
	LambdaR float64 // reader arrival rate
	LambdaW float64 // writer arrival rate
	MuR     float64 // reader service rate
	MuW     float64 // writer service rate
	RhoW    float64 // P(writer in queue) — the paper's ρ_w(i)
	RU      float64 // reader drain behind a queued writer
	RE      float64 // reader drain with no queued writer
	R       float64 // expected R-lock waiting time
	W       float64 // expected W-lock waiting time
	Stable  bool
}

// Result is a full analysis of one algorithm at one operating point.
type Result struct {
	Algorithm Algorithm
	Lambda    float64
	Levels    []LevelResult // Levels[0] is the leaf level (level 1)
	Stable    bool

	RespSearch float64 // Per(S)
	RespInsert float64 // Per(I)
	RespDelete float64 // Per(D)

	// OLC-only diagnostics (zero for the locking algorithms): the
	// restart process of the latch-free descent. ReadConflict[i] is the
	// probability one validation of a level-i node fails (index 0
	// unused); RestartProb is the mix-weighted probability a whole
	// latch-free descent must restart; FallbackProb is the mix-weighted
	// probability all OLCMaxAttempts descents fail and the operation
	// takes the locked path; RestartsPerOp is the mix-weighted expected
	// number of failed descents per operation.
	ReadConflict  []float64
	RestartProb   float64
	FallbackProb  float64
	RestartsPerOp float64
}

// Level returns the solved queue of level i (1 = leaf).
func (r *Result) Level(i int) LevelResult { return r.Levels[i-1] }

// RootRhoW returns ρ_w at the root — the quantity Theorem 2's maximum
// throughput condition and the §6 rules of thumb are stated in.
func (r *Result) RootRhoW() float64 { return r.Levels[len(r.Levels)-1].RhoW }

// RespMean returns the mix-weighted mean response time.
func (r *Result) RespMean(mix workload.Mix) float64 {
	return mix.QS*r.RespSearch + mix.QI*r.RespInsert + mix.QD*r.RespDelete
}

// saturateFrom marks level i and everything above it as saturated:
// ρ_w = 1, infinite waits, infinite response times. Levels below i keep
// their solved values.
func (r *Result) saturateFrom(i int, lam []float64, qs float64) {
	r.Stable = false
	inf := math.Inf(1)
	for j := i; j <= len(r.Levels); j++ {
		r.Levels[j-1] = LevelResult{
			Level:   j,
			LambdaR: qs * lam[j],
			LambdaW: (1 - qs) * lam[j],
			RhoW:    1,
			R:       inf,
			W:       inf,
			Stable:  false,
		}
	}
	r.RespSearch, r.RespInsert, r.RespDelete = inf, inf, inf
}

// levelLambdas distributes the root arrival rate down the tree:
// λ_h = λ, λ_i = λ_{i+1}/E(i+1) (Proposition 2).
func levelLambdas(s *shape.Model, lambda float64) []float64 {
	h := s.Height
	l := make([]float64, h+1)
	l[h] = lambda
	for i := h - 1; i >= 1; i-- {
		l[i] = l[i+1] / s.E(i+1)
	}
	return l
}
