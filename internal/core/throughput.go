package core

import (
	"fmt"
	"math"
)

// Analyze dispatches to the per-algorithm analysis. Optimistic Descent is
// evaluated without recovery; use AnalyzeOD directly for §7 variants.
func Analyze(a Algorithm, m Model, w Workload) (*Result, error) {
	switch a {
	case NLC:
		return AnalyzeNLC(m, w)
	case OD:
		return AnalyzeOD(m, w, ODOptions{})
	case Link:
		return AnalyzeLink(m, w)
	case TwoPhase:
		return AnalyzeTwoPhase(m, w)
	case OLC:
		return AnalyzeOLC(m, w)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", a)
	}
}

// MaxThroughput returns the maximum sustainable arrival rate of algorithm
// a on model m: the supremum of λ for which every level's queue is stable
// (for Naive Lock-coupling this is Theorem 2's ρ_w(h) → 1 point). The
// value is found by exponential search followed by bisection, to within
// rtol relative accuracy.
func MaxThroughput(a Algorithm, m Model, mix Workload, rtol float64) (float64, error) {
	if rtol <= 0 {
		rtol = 1e-4
	}
	stable := func(lambda float64) (bool, error) {
		res, err := Analyze(a, m, Workload{Lambda: lambda, Mix: mix.Mix})
		if err != nil {
			return false, err
		}
		return res.Stable, nil
	}
	return solveBoundary(stable, rtol)
}

// EffectiveMaxThroughput returns the arrival rate at which the root's
// writer presence ρ_w(h) reaches target (§6 uses .5: beyond it, waiting
// grows disproportionately). This is the quantity the rules of thumb
// approximate.
func EffectiveMaxThroughput(a Algorithm, m Model, mix Workload, target, rtol float64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("core: target ρ_w %v outside (0,1)", target)
	}
	if rtol <= 0 {
		rtol = 1e-4
	}
	below := func(lambda float64) (bool, error) {
		res, err := Analyze(a, m, Workload{Lambda: lambda, Mix: mix.Mix})
		if err != nil {
			return false, err
		}
		return res.Stable && res.RootRhoW() < target, nil
	}
	return solveBoundary(below, rtol)
}

// solveBoundary finds the largest λ for which ok(λ) holds, assuming ok is
// monotone (true below the boundary).
func solveBoundary(ok func(float64) (bool, error), rtol float64) (float64, error) {
	lo, hi := 0.0, 1e-3
	for {
		good, err := ok(hi)
		if err != nil {
			return 0, err
		}
		if !good {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1e12 {
			return math.Inf(1), nil
		}
	}
	for hi-lo > rtol*hi {
		mid := (lo + hi) / 2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
