package core

import (
	"math"
	"testing"
	"testing/quick"

	"btreeperf/internal/shape"
	"btreeperf/internal/workload"
	"btreeperf/internal/xrand"
)

// randomScenario derives a valid (model, workload) pair from raw fuzz
// inputs, spanning node sizes, tree sizes, disk costs and mixes.
func randomScenario(seed uint64) (Model, Workload, bool) {
	src := xrand.New(seed)
	n := 4 + src.IntN(200)
	items := 100 + src.IntN(500000)
	d := 1 + src.Float64()*19
	qs := src.Float64() * 0.9
	rest := 1 - qs
	qi := rest * (0.55 + src.Float64()*0.44) // qi > qd always
	qd := rest - qi
	s, err := shape.New(items, n, qi, qd)
	if err != nil {
		return Model{}, Workload{}, false
	}
	if s.Height < 2 {
		return Model{}, Workload{}, false
	}
	costs := PaperCosts(d)
	costs.MemLevels = src.IntN(s.Height + 1)
	m := Model{Shape: s, Costs: costs}
	w := Workload{Mix: workload.Mix{QS: qs, QI: qi, QD: qd}}
	return m, w, true
}

// For every algorithm and random scenario, a stable solution must satisfy
// the structural invariants of the framework.
func TestPropertyStableSolutionsWellFormed(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed uint64, algRaw uint8, frac uint8) bool {
		m, w, ok := randomScenario(seed)
		if !ok {
			return true
		}
		alg := []Algorithm{NLC, OD, Link, TwoPhase}[int(algRaw)%4]
		lmax, err := MaxThroughput(alg, m, w, 1e-3)
		if err != nil {
			return false
		}
		if math.IsInf(lmax, 1) {
			lmax = 100
		}
		lambda := (0.05 + 0.85*float64(frac)/255) * lmax
		res, err := Analyze(alg, m, Workload{Lambda: lambda, Mix: w.Mix})
		if err != nil || !res.Stable {
			return false
		}
		for _, lv := range res.Levels {
			if lv.RhoW < 0 || lv.RhoW >= 1 {
				return false
			}
			if lv.R < 0 || lv.W < lv.R {
				// A writer additionally drains readers: W(i) >= R(i).
				return false
			}
			if math.IsNaN(lv.R) || math.IsNaN(lv.W) {
				return false
			}
		}
		// Responses bound below by the serial costs.
		serialSearch := 0.0
		for i := 1; i <= m.Shape.Height; i++ {
			serialSearch += m.Costs.Se(i, m.Shape.Height)
		}
		if res.RespSearch < serialSearch-1e-9 {
			return false
		}
		if res.RespInsert <= 0 || res.RespDelete <= 0 {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Response times are monotone non-decreasing in λ while stable.
func TestPropertyMonotoneInLambda(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed uint64, algRaw uint8) bool {
		m, w, ok := randomScenario(seed)
		if !ok {
			return true
		}
		alg := []Algorithm{NLC, OD, Link}[int(algRaw)%3]
		lmax, err := MaxThroughput(alg, m, w, 1e-3)
		if err != nil {
			return false
		}
		if math.IsInf(lmax, 1) {
			lmax = 100
		}
		prevS, prevI := 0.0, 0.0
		for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			res, err := Analyze(alg, m, Workload{Lambda: f * lmax, Mix: w.Mix})
			if err != nil {
				return false
			}
			if !res.Stable {
				continue
			}
			if res.RespSearch < prevS-1e-9 || res.RespInsert < prevI-1e-9 {
				return false
			}
			prevS, prevI = res.RespSearch, res.RespInsert
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// MaxThroughput is consistent with Analyze: stable just below, unstable
// just above.
func TestPropertyMaxThroughputBoundary(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed uint64, algRaw uint8) bool {
		m, w, ok := randomScenario(seed)
		if !ok {
			return true
		}
		alg := []Algorithm{NLC, OD, TwoPhase}[int(algRaw)%3]
		lmax, err := MaxThroughput(alg, m, w, 1e-4)
		if err != nil || math.IsInf(lmax, 1) {
			return err == nil
		}
		below, err := Analyze(alg, m, Workload{Lambda: 0.995 * lmax, Mix: w.Mix})
		if err != nil || !below.Stable {
			return false
		}
		above, err := Analyze(alg, m, Workload{Lambda: 1.01 * lmax, Mix: w.Mix})
		if err != nil || above.Stable {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// The algorithm ordering Link >= OD >= NLC >= 2PL holds on every scenario.
func TestPropertyAlgorithmOrdering(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed uint64) bool {
		m, w, ok := randomScenario(seed)
		if !ok {
			return true
		}
		maxOf := func(a Algorithm) float64 {
			v, err := MaxThroughput(a, m, w, 1e-3)
			if err != nil {
				return -1
			}
			return v
		}
		tp := maxOf(TwoPhase)
		nlc := maxOf(NLC)
		od := maxOf(OD)
		link := maxOf(Link)
		if tp < 0 || nlc < 0 || od < 0 || link < 0 {
			return false
		}
		const slack = 1.02 // numerical tolerance on the boundary search
		return tp <= nlc*slack && nlc <= od*slack && od <= link*slack
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// Dilation scales the whole system linearly: doubling every service time
// halves the maximum throughput.
func TestPropertyDilationScaling(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed uint64) bool {
		m, w, ok := randomScenario(seed)
		if !ok {
			return true
		}
		base, err := MaxThroughput(NLC, m, w, 1e-4)
		if err != nil {
			return false
		}
		m2 := m
		m2.Costs.Dilation = 2
		half, err := MaxThroughput(NLC, m2, w, 1e-4)
		if err != nil {
			return false
		}
		return math.Abs(half-base/2)/base < 0.01
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
