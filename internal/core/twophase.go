package core

import (
	"fmt"

	"btreeperf/internal/qmodel"
)

// AnalyzeTwoPhase evaluates strict Two-Phase Locking on the B-tree — the
// extension the paper defers to its full version ("Results that will
// appear in the full version of this paper include analyses of additional
// concurrent B-tree algorithms, including Two-Phase locking").
//
// Under 2PL an operation never releases a lock before it finishes:
// searches hold R locks on the entire root-to-leaf path until the leaf
// access completes, and updates hold W locks on the whole path until the
// leaf is modified (and any restructuring done). This is Naive
// Lock-coupling without the release-ancestors-when-safe optimization, so
// it lower-bounds every protocol in the paper.
//
// The model: the level-i hold time is the full remaining descent below i
// plus the leaf work —
//
//	T(o,i) = Σ_{k<i} (Se(k)-ish work + wait at k) + leaf work
//
// computed leaf-up exactly like Theorem 1, except no term is ever dropped
// when a child is safe.
func AnalyzeTwoPhase(m Model, w Workload) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	s := m.Shape
	c := m.Costs
	h := s.Height
	mix := w.Mix
	lam := levelLambdas(s, w.Lambda)

	res := &Result{Algorithm: TwoPhase, Lambda: w.Lambda, Stable: true}
	res.Levels = make([]LevelResult, h)

	wi, _ := updateShares(mix.QI, mix.QD)

	// Hold times: the level-i lock is held for the node search plus the
	// entire remainder of the operation (wait + hold at i-1).
	tS := make([]float64, h+1)
	tU := make([]float64, h+1) // update (insert/delete weighted) hold
	rWait := make([]float64, h+1)
	wWait := make([]float64, h+1)

	splitWork := 0.0
	for j := 1; j <= h-1; j++ {
		splitWork += s.ProdPrF(j) * c.Sp(j, h)
	}

	for i := 1; i <= h; i++ {
		if i == 1 {
			tS[1] = c.Se(1, h)
			tU[1] = c.M(h) + splitWork*wi // restructuring done under the held path
		} else {
			tS[i] = c.Se(i, h) + rWait[i-1] + tS[i-1]
			tU[i] = c.Se(i, h) + wWait[i-1] + tU[i-1]
		}

		lr := mix.QS * lam[i]
		lw := (mix.QI + mix.QD) * lam[i]
		in := qmodel.Input{LambdaR: lr, LambdaW: lw, MuR: 1 / tS[i], MuW: 1 / tU[i]}
		sol, err := qmodel.Solve(in)
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", i, err)
		}
		if !sol.Stable {
			res.saturateFrom(i, lam, mix.QS)
			return res, nil
		}
		rWait[i] = qmodel.MM1Wait(sol.RhoW, sol.TA)
		wWait[i] = rWait[i] + sol.RhoW*sol.RU + (1-sol.RhoW)*sol.RE

		res.Levels[i-1] = LevelResult{
			Level: i, LambdaR: lr, LambdaW: lw, MuR: in.MuR, MuW: in.MuW,
			RhoW: sol.RhoW, RU: sol.RU, RE: sol.RE,
			R: rWait[i], W: wWait[i], Stable: sol.Stable,
		}
	}

	for i := 1; i <= h; i++ {
		res.RespSearch += c.Se(i, h) + rWait[i]
		if i >= 2 {
			res.RespDelete += c.Se(i, h) + wWait[i]
			res.RespInsert += c.Se(i, h) + wWait[i]
		}
	}
	res.RespDelete += c.M(h) + wWait[1]
	res.RespInsert += c.M(h) + wWait[1] + splitWork
	return res, nil
}
