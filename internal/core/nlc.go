package core

import (
	"fmt"
	"math"

	"btreeperf/internal/qmodel"
)

// AnalyzeNLC evaluates the Naive Lock-coupling algorithm (§5, Theorems
// 1–5). Search operations are R customers, inserts and deletes W
// customers; lock coupling makes the level-i hold times depend on the
// level-(i−1) waiting times, so the levels are solved leaf-up.
//
// The returned Result is meaningful even when Stable is false: saturated
// levels report ρ_w = 1 and infinite waits.
func AnalyzeNLC(m Model, w Workload) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	s := m.Shape
	c := m.Costs
	h := s.Height
	mix := w.Mix
	lam := levelLambdas(s, w.Lambda)

	res := &Result{Algorithm: NLC, Lambda: w.Lambda, Stable: true}
	res.Levels = make([]LevelResult, h)

	// Shares of insert and delete among W customers.
	wi, wd := updateShares(mix.QI, mix.QD)

	// Hold times T(o, i) built leaf-up (Theorem 1).
	tS := make([]float64, h+1)
	tI := make([]float64, h+1)
	tD := make([]float64, h+1)
	// Waiting times R(i), W(i).
	rWait := make([]float64, h+1)
	wWait := make([]float64, h+1)
	sols := make([]qmodel.Solution, h+1)

	for i := 1; i <= h; i++ {
		if i == 1 {
			tS[1] = c.Se(1, h)
			tI[1] = c.M(h)
			tD[1] = c.M(h)
		} else {
			tS[i] = c.Se(i, h) + rWait[i-1]
			tI[i] = c.Se(i, h) + wWait[i-1] +
				s.PrF(i-1)*tI[i-1] + c.Sp(i-1, h)*s.ProdPrF(i-1)
			tD[i] = c.Se(i, h) + wWait[i-1] +
				s.PrEm(i-1)*tD[i-1] + c.Mg(i-1, h)*prodPrEm(s, i-1)
		}

		lr := mix.QS * lam[i]
		lw := (mix.QI + mix.QD) * lam[i]
		in := qmodel.Input{
			LambdaR: lr,
			LambdaW: lw,
			MuR:     1 / tS[i],
			MuW:     1 / (wi*tI[i] + wd*tD[i]),
		}
		sol, err := qmodel.Solve(in)
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", i, err)
		}
		sols[i] = sol
		if !sol.Stable {
			// A saturated level has unbounded waits; hold times above it
			// are undefined. Mark everything from here up saturated.
			res.saturateFrom(i, lam, mix.QS)
			return res, nil
		}

		if i == 1 {
			// Theorem 4: M/M/1 on aggregate customers at the leaves.
			rWait[1] = qmodel.MM1Wait(sol.RhoW, sol.TA)
		} else {
			// Theorem 3: M/G/1 with the hyperexponential lock service.
			pf := wi * s.PrF(i-1)
			te := c.Se(i, h) + sol.RhoW*sol.RU + (1-sol.RhoW)*sol.RE
			// Unsafe-child stage: the child is modified and — with the
			// probability the split propagated up to it — split.
			// ∏_{k=1}^{i-2} Pr[F(k)] is the empty product 1 when i = 2.
			tf := tI[i-1] + c.Sp(i-1, h)*prodPrFBelow(s, i-2)
			rhoO := sols[i-1].RhoW
			muO := math.Inf(1)
			if rhoO > 0 {
				muO = 1 / (rWait[i-1]/rhoO + sols[i-1].RU)
			}
			_, ex2 := qmodel.Theorem3Moments(te, pf, tf, rhoO, muO, sols[i-1].RE)
			rWait[i] = qmodel.MG1Wait(lw, ex2, sol.RhoW)
		}
		wWait[i] = rWait[i] + sol.RhoW*sol.RU + (1-sol.RhoW)*sol.RE

		res.Levels[i-1] = LevelResult{
			Level:   i,
			LambdaR: lr,
			LambdaW: lw,
			MuR:     in.MuR,
			MuW:     in.MuW,
			RhoW:    sol.RhoW,
			RU:      sol.RU,
			RE:      sol.RE,
			R:       rWait[i],
			W:       wWait[i],
			Stable:  sol.Stable,
		}
	}

	// Theorem 5: response times.
	res.RespSearch = 0
	for i := 1; i <= h; i++ {
		res.RespSearch += c.Se(i, h) + rWait[i]
	}
	res.RespDelete = c.M(h) + wWait[1]
	for i := 2; i <= h; i++ {
		res.RespDelete += c.Se(i, h) + wWait[i]
	}
	res.RespInsert = c.M(h)
	for i := 2; i <= h; i++ {
		res.RespInsert += c.Se(i, h)
	}
	for i := 1; i <= h; i++ {
		res.RespInsert += wWait[i]
	}
	for j := 1; j <= h-1; j++ {
		res.RespInsert += s.ProdPrF(j) * c.Sp(j, h)
	}
	return res, nil
}

// updateShares returns the insert and delete shares among update
// operations; both zero when there are no updates.
func updateShares(qi, qd float64) (wi, wd float64) {
	if qi+qd <= 0 {
		return 0, 0
	}
	return qi / (qi + qd), qd / (qi + qd)
}

// prodPrEm is ∏_{k=1..i} Pr[Em(k)].
func prodPrEm(s interface{ PrEm(int) float64 }, i int) float64 {
	p := 1.0
	for k := 1; k <= i; k++ {
		p *= s.PrEm(k)
	}
	return p
}

// prodPrFBelow is ∏_{k=1..i} Pr[F(k)] with the empty product (i < 1)
// defined as 1.
func prodPrFBelow(s interface{ ProdPrF(int) float64 }, i int) float64 {
	if i < 1 {
		return 1
	}
	return s.ProdPrF(i)
}
