package core

import (
	"fmt"
	"math"

	"btreeperf/internal/qmodel"
)

// ODOptions extends the Optimistic Descent analysis with the §7 recovery
// protocols: TTrans is the expected time from the B-tree operation until
// the surrounding transaction commits (the paper uses 100 time units as a
// conservative figure).
type ODOptions struct {
	Recovery RecoveryPolicy
	TTrans   float64
}

// AnalyzeOD evaluates the Optimistic Descent algorithm (§5.1). Update
// operations make an optimistic first descent placing R locks, W-locking
// only the leaf; when the leaf is unsafe they release everything and make
// a second, Naive-Lock-coupling-style descent. The second descents form
// the redo-insert (and, negligibly, redo-delete) operation class:
// its arrival rate is q_i·Pr[F(1)]·λ.
//
// Per-level queue composition:
//
//   - levels h..2: R customers are all first descents (searches and
//     updates), W customers are redo operations only;
//   - level 1 (leaf): R customers are searches; W customers are
//     first-descent updates plus redo operations.
//
// Recovery (§7) extends the leaf W hold times by TTrans (Naive and
// LeafOnly), and the upper-level redo W hold times by Pr[F(i)]·TTrans
// (Naive only).
func AnalyzeOD(m Model, w Workload, opts ODOptions) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if opts.TTrans < 0 {
		return nil, fmt.Errorf("core: negative TTrans %v", opts.TTrans)
	}
	s := m.Shape
	c := m.Costs
	h := s.Height
	mix := w.Mix
	lam := levelLambdas(s, w.Lambda)

	res := &Result{Algorithm: OD, Lambda: w.Lambda, Stable: true}
	res.Levels = make([]LevelResult, h)

	// Redo arrival rates: updates that found an unsafe leaf re-descend.
	redoShareI := mix.QI * s.PrF(1)  // redo-inserts per arriving operation
	redoShareD := mix.QD * s.PrEm(1) // redo-deletes per arriving operation
	redoShare := redoShareI + redoShareD
	wri, wrd := updateShares(redoShareI, redoShareD)

	// Recovery additions to W hold times.
	leafHold := 0.0
	upperHold := func(i int) float64 { return 0 }
	if opts.Recovery == LeafOnly || opts.Recovery == NaiveRecovery {
		leafHold = opts.TTrans
	}
	if opts.Recovery == NaiveRecovery {
		upperHold = func(i int) float64 { return s.PrF(i) * opts.TTrans }
	}

	// Redo hold times follow the NLC Theorem 1 recursion.
	tRI := make([]float64, h+1)
	tRD := make([]float64, h+1)
	rWait := make([]float64, h+1)
	wWait := make([]float64, h+1)
	sols := make([]qmodel.Solution, h+1)

	for i := 1; i <= h; i++ {
		var lr, lw, muR, muW float64
		if i == 1 {
			tRI[1] = c.M(h) + leafHold
			tRD[1] = c.M(h) + leafHold

			lr = mix.QS * lam[1]
			lw = (mix.QI+mix.QD)*lam[1] + redoShare*lam[1]
			muR = 1 / c.Se(1, h)
			// First-descent updates: modify when the leaf is safe,
			// inspect-and-release when it is not (then redo separately).
			tFirstI := (1-s.PrF(1))*(c.M(h)+leafHold) + s.PrF(1)*c.Se(1, h)
			tFirstD := (1-s.PrEm(1))*(c.M(h)+leafHold) + s.PrEm(1)*c.Se(1, h)
			wi, wd := updateShares(mix.QI, mix.QD)
			firstShare := mix.QI + mix.QD
			var tw float64
			if firstShare+redoShare > 0 {
				tw = (firstShare*(wi*tFirstI+wd*tFirstD) +
					redoShare*(wri*tRI[1]+wrd*tRD[1])) / (firstShare + redoShare)
			}
			if tw > 0 {
				muW = 1 / tw
			}
		} else {
			tRI[i] = c.Se(i, h) + wWait[i-1] +
				s.PrF(i-1)*tRI[i-1] + c.Sp(i-1, h)*s.ProdPrF(i-1) + upperHold(i)
			tRD[i] = c.Se(i, h) + wWait[i-1] +
				s.PrEm(i-1)*tRD[i-1] + c.Mg(i-1, h)*prodPrEm(s, i-1) + upperHold(i)

			lr = lam[i] // every operation R-locks on its first descent
			lw = redoShare * lam[i]
			// R hold: searches couple to the child's R lock; at level 2
			// first-descent updates couple to the leaf's W lock instead.
			var tr float64
			if i == 2 {
				tr = mix.QS*(c.Se(2, h)+rWait[1]) +
					(mix.QI+mix.QD)*(c.Se(2, h)+wWait[1])
			} else {
				tr = c.Se(i, h) + rWait[i-1]
			}
			muR = 1 / tr
			if lw > 0 {
				muW = 1 / (wri*tRI[i] + wrd*tRD[i])
			} else {
				muW = 1 // unused
			}
		}

		sol, err := qmodel.Solve(qmodel.Input{LambdaR: lr, LambdaW: lw, MuR: muR, MuW: muW})
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", i, err)
		}
		sols[i] = sol
		if !sol.Stable {
			res.saturateFrom(i, lam, mix.QS)
			return res, nil
		}

		if i == 1 || lw == 0 {
			rWait[i] = qmodel.MM1Wait(sol.RhoW, sol.TA)
		} else {
			// Redo W customers use lock coupling: Theorem 3 applies with
			// the redo-insert service structure.
			pf := wri * s.PrF(i-1)
			te := c.Se(i, h) + sol.RhoW*sol.RU + (1-sol.RhoW)*sol.RE + upperHold(i)
			tf := tRI[i-1] + c.Sp(i-1, h)*prodPrFBelow(s, i-2)
			rhoO := sols[i-1].RhoW
			muO := math.Inf(1)
			if rhoO > 0 {
				muO = 1 / (rWait[i-1]/rhoO + sols[i-1].RU)
			}
			_, ex2 := qmodel.Theorem3Moments(te, pf, tf, rhoO, muO, sols[i-1].RE)
			rWait[i] = qmodel.MG1Wait(lw, ex2, sol.RhoW)
		}
		wWait[i] = rWait[i] + sol.RhoW*sol.RU + (1-sol.RhoW)*sol.RE

		res.Levels[i-1] = LevelResult{
			Level: i, LambdaR: lr, LambdaW: lw, MuR: muR, MuW: muW,
			RhoW: sol.RhoW, RU: sol.RU, RE: sol.RE,
			R: rWait[i], W: wWait[i], Stable: sol.Stable,
		}
	}

	// Response times. Searches R-lock every level.
	for i := 1; i <= h; i++ {
		res.RespSearch += c.Se(i, h) + rWait[i]
	}
	// First descent of an update: R locks down to level 2, W lock on leaf.
	firstDescent := c.M(h) + wWait[1]
	for i := 2; i <= h; i++ {
		firstDescent += c.Se(i, h) + rWait[i]
	}
	// Redo-insert response: the NLC insert formula (Theorem 5).
	redoInsert := c.M(h)
	for i := 2; i <= h; i++ {
		redoInsert += c.Se(i, h)
	}
	for i := 1; i <= h; i++ {
		redoInsert += wWait[i]
	}
	for j := 1; j <= h-1; j++ {
		redoInsert += s.ProdPrF(j) * c.Sp(j, h)
	}
	redoDelete := c.M(h) + wWait[1]
	for i := 2; i <= h; i++ {
		redoDelete += c.Se(i, h) + wWait[i]
	}
	res.RespInsert = firstDescent + s.PrF(1)*redoInsert
	res.RespDelete = firstDescent + s.PrEm(1)*redoDelete
	return res, nil
}
