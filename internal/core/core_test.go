package core

import (
	"math"
	"testing"

	"btreeperf/internal/shape"
	"btreeperf/internal/workload"
)

// paperModel is the configuration of the paper's experiments: N=13,
// ~40,000 items (5 levels, root fanout ≈ 6), disk cost D, 2 in-memory
// levels.
func paperModel(t testing.TB, d float64) Model {
	t.Helper()
	s, err := shape.New(40000, 13, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return Model{Shape: s, Costs: PaperCosts(d)}
}

func paperWorkload(lambda float64) Workload {
	return Workload{Lambda: lambda, Mix: workload.PaperMix}
}

func TestCostModel(t *testing.T) {
	c := PaperCosts(5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	h := 5
	// Top two levels in memory, rest on disk at 5×.
	if c.Se(5, h) != 1 || c.Se(4, h) != 1 {
		t.Fatalf("in-memory Se: %v %v", c.Se(5, h), c.Se(4, h))
	}
	for i := 1; i <= 3; i++ {
		if c.Se(i, h) != 5 {
			t.Fatalf("Se(%d) = %v, want 5", i, c.Se(i, h))
		}
	}
	if c.M(h) != 10 {
		t.Fatalf("M = %v, want 10", c.M(h))
	}
	if c.Sp(3, h) != 15 || c.Sp(5, h) != 3 {
		t.Fatalf("Sp = %v / %v", c.Sp(3, h), c.Sp(5, h))
	}
}

func TestCostModelValidation(t *testing.T) {
	bad := []CostModel{
		{SearchMem: 0, DiskCost: 1, ModifyFactor: 2, SplitFactor: 3, MergeFactor: 3, Dilation: 1},
		{SearchMem: 1, DiskCost: 0.5, ModifyFactor: 2, SplitFactor: 3, MergeFactor: 3, Dilation: 1},
		{SearchMem: 1, DiskCost: 1, MemLevels: -1, ModifyFactor: 2, SplitFactor: 3, MergeFactor: 3, Dilation: 1},
		{SearchMem: 1, DiskCost: 1, ModifyFactor: 0, SplitFactor: 3, MergeFactor: 3, Dilation: 1},
		{SearchMem: 1, DiskCost: 1, ModifyFactor: 2, SplitFactor: 3, MergeFactor: 3, Dilation: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestDilationScalesCosts(t *testing.T) {
	c := PaperCosts(5)
	c.Dilation = 2
	if c.Se(5, 5) != 2 || c.M(5) != 20 {
		t.Fatalf("dilation not applied: Se=%v M=%v", c.Se(5, 5), c.M(5))
	}
}

func TestStrings(t *testing.T) {
	if NLC.String() != "naive-lock-coupling" || OD.String() != "optimistic-descent" || Link.String() != "link-type" {
		t.Fatal("Algorithm strings")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm string")
	}
	if NoRecovery.String() != "none" || LeafOnly.String() != "leaf-only" || NaiveRecovery.String() != "naive" {
		t.Fatal("RecoveryPolicy strings")
	}
	if RecoveryPolicy(9).String() == "" {
		t.Fatal("unknown recovery string")
	}
}

func TestNLCNoContentionLimit(t *testing.T) {
	m := paperModel(t, 5)
	res, err := AnalyzeNLC(m, paperWorkload(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("vanishing load unstable")
	}
	// Per(S) → Σ Se(i) = 5+5+5+1+1 = 17.
	if math.Abs(res.RespSearch-17) > 0.01 {
		t.Errorf("RespSearch = %v, want ≈17", res.RespSearch)
	}
	// Per(I) → M + Σ_{i≥2}Se + Σ ProdPrF(j)·Sp(j) ≈ 10+12+1.15.
	if res.RespInsert < 22 || res.RespInsert > 24 {
		t.Errorf("RespInsert = %v, want ≈23.1", res.RespInsert)
	}
	// Per(D) → M + Σ_{i≥2}Se = 22.
	if math.Abs(res.RespDelete-22) > 0.1 {
		t.Errorf("RespDelete = %v, want ≈22", res.RespDelete)
	}
	for _, lv := range res.Levels {
		if lv.RhoW > 1e-6 {
			t.Errorf("level %d ρ_w = %v at vanishing load", lv.Level, lv.RhoW)
		}
	}
}

func TestNLCMonotoneInLambda(t *testing.T) {
	m := paperModel(t, 5)
	prevResp, prevRho := 0.0, -1.0
	for _, lambda := range []float64{0.001, 0.005, 0.01, 0.015, 0.02} {
		res, err := AnalyzeNLC(m, paperWorkload(lambda))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stable {
			break
		}
		if res.RespInsert <= prevResp {
			t.Fatalf("insert response not increasing at λ=%v: %v <= %v", lambda, res.RespInsert, prevResp)
		}
		if res.RootRhoW() <= prevRho {
			t.Fatalf("root ρ_w not increasing at λ=%v", lambda)
		}
		prevResp, prevRho = res.RespInsert, res.RootRhoW()
	}
	if prevRho <= 0 {
		t.Fatal("no stable points evaluated")
	}
}

func TestNLCRootIsBottleneck(t *testing.T) {
	m := paperModel(t, 5)
	res, err := AnalyzeNLC(m, paperWorkload(0.02))
	if err != nil {
		t.Fatal(err)
	}
	root := res.RootRhoW()
	for _, lv := range res.Levels[:len(res.Levels)-1] {
		if lv.RhoW >= root {
			t.Errorf("level %d ρ_w %v >= root %v (Theorem 2 says the root saturates first)",
				lv.Level, lv.RhoW, root)
		}
	}
}

func TestNLCSaturation(t *testing.T) {
	m := paperModel(t, 5)
	res, err := AnalyzeNLC(m, paperWorkload(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Fatal("λ=10 should saturate Naive Lock-coupling")
	}
	if res.RootRhoW() != 1 {
		t.Fatalf("saturated root ρ_w = %v", res.RootRhoW())
	}
}

func TestRootRhoWGrowsNonlinearly(t *testing.T) {
	// Figure 10: going from ρ_w=.5 to ρ_w→1 takes less than a 50% rate
	// increase for Naive Lock-coupling.
	m := paperModel(t, 5)
	mix := paperWorkload(0)
	l50, err := EffectiveMaxThroughput(NLC, m, mix, 0.5, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	lmax, err := MaxThroughput(NLC, m, mix, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if lmax <= l50 {
		t.Fatalf("λ_max %v <= λ_.5 %v", lmax, l50)
	}
	if ratio := lmax / l50; ratio >= 1.5 {
		t.Errorf("λ_max/λ_.5 = %v, paper predicts < 1.5", ratio)
	}
}

func TestAlgorithmRanking(t *testing.T) {
	// Figure 12: Link ≫ OD ≫ NLC in maximum throughput.
	m := paperModel(t, 5)
	mix := paperWorkload(0)
	nlc, err := MaxThroughput(NLC, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	od, err := MaxThroughput(OD, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	link, err := MaxThroughput(Link, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if !(link > 2*od) {
		t.Errorf("Link max %v should far exceed OD max %v", link, od)
	}
	if !(od > 1.5*nlc) {
		t.Errorf("OD max %v should clearly exceed NLC max %v", od, nlc)
	}
}

func TestResponseRankingNearSaturation(t *testing.T) {
	// Figure 12: near NLC's saturation its response blows up while OD and
	// Link stay nearly flat; near OD's saturation Link stays flat.
	m := paperModel(t, 5)
	mix := paperWorkload(0)
	nlcMax, err := MaxThroughput(NLC, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	w := paperWorkload(0.97 * nlcMax)
	nlc, err := AnalyzeNLC(m, w)
	if err != nil {
		t.Fatal(err)
	}
	od, err := AnalyzeOD(m, w, ODOptions{})
	if err != nil {
		t.Fatal(err)
	}
	link, err := AnalyzeLink(m, w)
	if err != nil {
		t.Fatal(err)
	}
	if !nlc.Stable {
		t.Fatal("NLC unstable just below its max throughput")
	}
	if !(nlc.RespInsert > 1.5*od.RespInsert) {
		t.Errorf("near NLC saturation: nlc=%v should dwarf od=%v", nlc.RespInsert, od.RespInsert)
	}
	if !(nlc.RespSearch > 1.5*link.RespSearch) {
		t.Errorf("near NLC saturation: nlc search=%v should dwarf link=%v", nlc.RespSearch, link.RespSearch)
	}

	odMax, err := MaxThroughput(OD, m, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	w2 := paperWorkload(0.97 * odMax)
	od2, err := AnalyzeOD(m, w2, ODOptions{})
	if err != nil {
		t.Fatal(err)
	}
	link2, err := AnalyzeLink(m, w2)
	if err != nil {
		t.Fatal(err)
	}
	if !od2.Stable || !link2.Stable {
		t.Fatal("OD/Link unstable just below OD's max")
	}
	if !(od2.RespInsert > 1.5*link2.RespInsert) {
		t.Errorf("near OD saturation: od=%v should dwarf link=%v", od2.RespInsert, link2.RespInsert)
	}
}

func TestNLCMaxThroughputFallsWithDiskCost(t *testing.T) {
	// Figure 11.
	mix := paperWorkload(0)
	prev := math.Inf(1)
	for _, d := range []float64{1, 2, 5, 10, 20} {
		m := paperModel(t, d)
		lmax, err := MaxThroughput(NLC, m, mix, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if lmax >= prev {
			t.Errorf("max throughput did not fall at D=%v: %v >= %v", d, lmax, prev)
		}
		prev = lmax
	}
}

func TestODBeatsNLCMoreWithLargerNodes(t *testing.T) {
	// §6: OD's effective maximum grows with N; NLC's does not.
	mix := paperWorkload(0)
	ratios := make([]float64, 0, 3)
	for _, n := range []int{13, 29, 59} {
		s, err := shape.NewWithHeight(5, n, 6, 0.5, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Shape: s, Costs: PaperCosts(1)}
		nlc, err := EffectiveMaxThroughput(NLC, m, mix, 0.5, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		od, err := EffectiveMaxThroughput(OD, m, mix, 0.5, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, od/nlc)
	}
	if !(ratios[0] < ratios[1] && ratios[1] < ratios[2]) {
		t.Errorf("OD/NLC advantage should grow with N: %v", ratios)
	}
}

func TestRuleOfThumb1MatchesModel(t *testing.T) {
	// Figure 13, in-memory case: rule of thumb 1 closely tracks the full
	// model's λ_{ρ=.5}.
	mix := paperWorkload(0)
	for _, n := range []int{13, 29, 59, 101} {
		s, err := shape.NewWithHeight(5, n, 6, 0.5, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Shape: s, Costs: PaperCosts(1)}
		rot, err := RuleOfThumb1(m, mix)
		if err != nil {
			t.Fatal(err)
		}
		full, err := EffectiveMaxThroughput(NLC, m, mix, 0.5, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(rot-full) / full; rel > 0.35 {
			t.Errorf("N=%d: rule of thumb 1 = %v, model = %v (rel %.2f)", n, rot, full, rel)
		}
	}
}

func TestRuleOfThumb1ApproachesLimit(t *testing.T) {
	// Figure 13: as N grows, rule 1 approaches the limit rule 2.
	mix := paperWorkload(0)
	prevGap := math.Inf(1)
	for _, n := range []int{13, 59, 201, 1001} {
		s, err := shape.NewWithHeight(5, n, 20, 0.5, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Shape: s, Costs: PaperCosts(1)}
		r1, err := RuleOfThumb1(m, mix)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RuleOfThumb2(m, mix)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(r1-r2) / r2
		if gap > prevGap+1e-12 {
			t.Errorf("gap to limit grew at N=%d: %v > %v", n, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.05 {
		t.Errorf("rule 1 did not approach limit: residual relative gap %v", prevGap)
	}
}

func TestRuleOfThumb3MatchesModel(t *testing.T) {
	// Figure 14 (in-memory): rule of thumb 3 tracks the OD model,
	// improving as N grows.
	mix := paperWorkload(0)
	for _, n := range []int{29, 59, 101} {
		s, err := shape.NewWithHeight(5, n, 6, 0.5, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Shape: s, Costs: PaperCosts(1)}
		rot, err := RuleOfThumb3(m, mix)
		if err != nil {
			t.Fatal(err)
		}
		full, err := EffectiveMaxThroughput(OD, m, mix, 0.5, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(rot-full) / full; rel > 0.45 {
			t.Errorf("N=%d: rule of thumb 3 = %v, model = %v (rel %.2f)", n, rot, full, rel)
		}
	}
}

func TestRuleOfThumb4Scaling(t *testing.T) {
	// Rule 4 ∝ 1/(q_i·Pr[F(1)]), so it grows roughly like N/log N.
	mix := paperWorkload(0)
	prev := 0.0
	for _, n := range []int{13, 59, 201} {
		s, err := shape.NewWithHeight(4, n, 6, 0.5, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Shape: s, Costs: PaperCosts(1)}
		r4, err := RuleOfThumb4(m, mix)
		if err != nil {
			t.Fatal(err)
		}
		if r4 <= prev {
			t.Fatalf("rule 4 not increasing in N at %d: %v <= %v", n, r4, prev)
		}
		prev = r4
	}
}

func TestRecoveryOrdering(t *testing.T) {
	// Figures 15/16: Naive recovery ≫ Leaf-only ≳ no recovery, at D=10,
	// TTrans=100.
	s, err := shape.NewWithHeight(5, 13, 6, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Shape: s, Costs: PaperCosts(10)}

	// The throughput gap: naive recovery saturates earlier.
	mix := paperWorkload(0)
	maxNone, err := maxOD(m, mix, ODOptions{Recovery: NoRecovery})
	if err != nil {
		t.Fatal(err)
	}
	maxLeaf, err := maxOD(m, mix, ODOptions{Recovery: LeafOnly, TTrans: 100})
	if err != nil {
		t.Fatal(err)
	}
	maxNaive, err := maxOD(m, mix, ODOptions{Recovery: NaiveRecovery, TTrans: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !(maxNaive < maxLeaf && maxLeaf <= maxNone) {
		t.Errorf("max throughputs: naive=%v leaf=%v none=%v", maxNaive, maxLeaf, maxNone)
	}

	// Response ordering near naive recovery's saturation (where Figure 15
	// shows the naive curve blowing up while the others stay flat).
	w := paperWorkload(0.95 * maxNaive)
	none, err := AnalyzeOD(m, w, ODOptions{Recovery: NoRecovery})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := AnalyzeOD(m, w, ODOptions{Recovery: LeafOnly, TTrans: 100})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := AnalyzeOD(m, w, ODOptions{Recovery: NaiveRecovery, TTrans: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !none.Stable || !leaf.Stable || !naive.Stable {
		t.Fatalf("stability at 0.95·maxNaive: none=%v leaf=%v naive=%v",
			none.Stable, leaf.Stable, naive.Stable)
	}
	if !(leaf.RespInsert >= none.RespInsert) {
		t.Errorf("leaf-only %v should be ≥ none %v", leaf.RespInsert, none.RespInsert)
	}
	if !(naive.RespInsert > 1.2*leaf.RespInsert) {
		t.Errorf("naive %v should be well above leaf-only %v", naive.RespInsert, leaf.RespInsert)
	}
}

// maxOD is MaxThroughput for OD with recovery options.
func maxOD(m Model, mix Workload, opts ODOptions) (float64, error) {
	stable := func(lambda float64) (bool, error) {
		res, err := AnalyzeOD(m, Workload{Lambda: lambda, Mix: mix.Mix}, opts)
		if err != nil {
			return false, err
		}
		return res.Stable, nil
	}
	return solveBoundary(stable, 1e-4)
}

func TestLinkHasEnormousHeadroom(t *testing.T) {
	// §6: the Link-type algorithm's maximum throughput is enormous —
	// far beyond the loads that saturate the others.
	m := paperModel(t, 5)
	mix := paperWorkload(0)
	link, err := MaxThroughput(Link, m, mix, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	nlc, err := MaxThroughput(NLC, m, mix, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if link < 10*nlc {
		t.Errorf("Link max %v should dwarf NLC max %v", link, nlc)
	}
}

func TestSearchOnlyMixNeverSaturates(t *testing.T) {
	m := paperModel(t, 5)
	w := Workload{Lambda: 100, Mix: workload.Mix{QS: 1}}
	for _, analyze := range []func() (*Result, error){
		func() (*Result, error) { return AnalyzeNLC(m, w) },
		func() (*Result, error) { return AnalyzeLink(m, w) },
	} {
		res, err := analyze()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stable {
			t.Error("read-only workload saturated")
		}
		if res.RespSearch <= 0 {
			t.Error("non-positive search response")
		}
	}
}

func TestAnalyzeDispatch(t *testing.T) {
	m := paperModel(t, 5)
	w := paperWorkload(0.001)
	for _, a := range []Algorithm{NLC, OD, Link} {
		res, err := Analyze(a, m, w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Algorithm != a {
			t.Errorf("dispatch returned %v for %v", res.Algorithm, a)
		}
	}
	if _, err := Analyze(Algorithm(9), m, w); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestWorkloadValidation(t *testing.T) {
	m := paperModel(t, 5)
	if _, err := AnalyzeNLC(m, Workload{Lambda: -1, Mix: workload.PaperMix}); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := AnalyzeNLC(Model{}, paperWorkload(1)); err == nil {
		t.Error("nil shape accepted")
	}
	if _, err := AnalyzeOD(m, paperWorkload(1), ODOptions{TTrans: -1}); err == nil {
		t.Error("negative TTrans accepted")
	}
}

func TestRespMean(t *testing.T) {
	r := &Result{RespSearch: 10, RespInsert: 20, RespDelete: 30}
	got := r.RespMean(workload.PaperMix)
	want := 0.3*10 + 0.5*20 + 0.2*30
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RespMean = %v, want %v", got, want)
	}
}

func TestEffectiveMaxTargetValidation(t *testing.T) {
	m := paperModel(t, 5)
	mix := paperWorkload(0)
	for _, target := range []float64{0, 1, -0.5, 1.5} {
		if _, err := EffectiveMaxThroughput(NLC, m, mix, target, 1e-4); err == nil {
			t.Errorf("target %v accepted", target)
		}
	}
}
