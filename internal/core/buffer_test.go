package core

import (
	"math"
	"path/filepath"
	"testing"

	"btreeperf/internal/diskbtree"
	"btreeperf/internal/shape"
	"btreeperf/internal/xrand"
)

func TestBufferedCostsLevels(t *testing.T) {
	s, err := shape.New(40000, 13, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	base := PaperCosts(5)
	// Pool large enough for the top three levels (1 + 6.27 + 6.27·8.97 ≈ 64)
	// but not the thousands of level-2 nodes.
	c, err := BufferedCosts(s, 70, base)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Height
	if c.MissAt(h, h) != 0 || c.MissAt(h-1, h) != 0 || c.MissAt(h-2, h) != 0 {
		t.Fatalf("top levels should be resident: %v %v %v",
			c.MissAt(h, h), c.MissAt(h-1, h), c.MissAt(h-2, h))
	}
	if m := c.MissAt(2, h); m < 0.95 {
		t.Fatalf("level 2 should be nearly cold: miss %v", m)
	}
	if m := c.MissAt(1, h); m < 0.99 {
		t.Fatalf("leaves should be cold: miss %v", m)
	}
	// Se reflects the mix.
	if got := c.Se(h, h); math.Abs(got-1) > 1e-12 {
		t.Fatalf("resident root Se = %v", got)
	}
	if got := c.Se(1, h); math.Abs(got-5) > 0.05 {
		t.Fatalf("cold leaf Se = %v, want ≈5", got)
	}
}

func TestBufferedCostsZeroAndHugePool(t *testing.T) {
	s, _ := shape.New(40000, 13, 0.5, 0.2)
	base := PaperCosts(5)
	cold, err := BufferedCosts(s, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= s.Height; i++ {
		if cold.MissAt(i, s.Height) != 1 {
			t.Fatalf("level %d not cold with empty pool", i)
		}
	}
	hot, err := BufferedCosts(s, 1e9, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= s.Height; i++ {
		if hot.MissAt(i, s.Height) != 0 {
			t.Fatalf("level %d not resident with huge pool", i)
		}
	}
	if ExpectedHitRatio(s, hot) != 1 || ExpectedHitRatio(s, cold) != 0 {
		t.Fatal("hit ratios at the extremes")
	}
}

func TestBufferedCostsValidation(t *testing.T) {
	s, _ := shape.New(1000, 13, 1, 0)
	if _, err := BufferedCosts(nil, 10, PaperCosts(5)); err == nil {
		t.Error("nil shape accepted")
	}
	if _, err := BufferedCosts(s, -1, PaperCosts(5)); err == nil {
		t.Error("negative pool accepted")
	}
	if _, err := BufferedCosts(s, 10, CostModel{}); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestLevelPopulations(t *testing.T) {
	s, _ := shape.New(40000, 13, 0.5, 0.2)
	pop := LevelPopulations(s)
	if pop[s.Height] != 1 {
		t.Fatal("root population")
	}
	for i := 1; i < s.Height; i++ {
		if pop[i] <= pop[i+1] {
			t.Fatalf("populations must grow downward: pop[%d]=%v pop[%d]=%v",
				i, pop[i], i+1, pop[i+1])
		}
	}
	// Leaves ≈ items/(leaf occupancy).
	wantLeaves := 40000 / s.E(1)
	if math.Abs(pop[1]-wantLeaves)/wantLeaves > 0.25 {
		t.Fatalf("leaf population %v, want ≈%v", pop[1], wantLeaves)
	}
}

// TestBufferModelAgainstRealLRUPool is the cross-validation: the
// analytical hit ratio derived from the tree shape must track the
// measured hit ratio of internal/diskbtree's real LRU buffer pool under a
// uniform search workload.
func TestBufferModelAgainstRealLRUPool(t *testing.T) {
	const items = 20000
	const cap = 32
	path := filepath.Join(t.TempDir(), "buf.db")

	for _, poolNodes := range []int{16, 64, 512} {
		tr, err := diskbtree.Open(path+string(rune('a'+poolNodes%26)), diskbtree.Options{Cap: cap, CacheNodes: poolNodes})
		if err != nil {
			t.Fatal(err)
		}
		src := xrand.New(9)
		keys := make([]int64, 0, items)
		for len(keys) < items {
			k := src.Int63n(1 << 30)
			if fresh, err := tr.Insert(k, 1); err != nil {
				t.Fatal(err)
			} else if fresh {
				keys = append(keys, k)
			}
		}
		// Warm the pool, then measure a read-only phase.
		reads := xrand.New(17)
		for i := 0; i < 20000; i++ {
			tr.Search(keys[reads.IntN(len(keys))])
		}
		before := tr.CacheStats()
		for i := 0; i < 40000; i++ {
			tr.Search(keys[reads.IntN(len(keys))])
		}
		after := tr.CacheStats()
		measured := float64(after.Hits-before.Hits) /
			float64(after.Hits-before.Hits+after.Misses-before.Misses)

		s, err := shape.New(items, cap, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := BufferedCosts(s, float64(poolNodes), PaperCosts(5))
		if err != nil {
			t.Fatal(err)
		}
		predicted := ExpectedHitRatio(s, c)
		if math.Abs(measured-predicted) > 0.12 {
			t.Errorf("pool %d: measured hit ratio %.3f vs model %.3f",
				poolNodes, measured, predicted)
		}
		tr.Close()
	}
}

func TestMaxThroughputImprovesWithBuffer(t *testing.T) {
	// The §8 extension's payoff: growing the pool raises NLC's ceiling
	// from its D-limited value toward its in-memory value.
	s, err := shape.New(40000, 13, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	base := PaperCosts(10)
	mix := paperWorkload(0)
	prev := 0.0
	for _, pool := range []float64{1, 70, 600, 1e6} {
		c, err := BufferedCosts(s, pool, base)
		if err != nil {
			t.Fatal(err)
		}
		lmax, err := MaxThroughput(NLC, Model{Shape: s, Costs: c}, mix, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if lmax <= prev {
			t.Fatalf("pool %v did not raise throughput: %v <= %v", pool, lmax, prev)
		}
		prev = lmax
	}
	// Fully resident ≈ the D=1 model.
	inMem, err := MaxThroughput(NLC, Model{Shape: s, Costs: PaperCosts(1)}, mix, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prev-inMem)/inMem > 0.02 {
		t.Fatalf("fully buffered max %v vs in-memory %v", prev, inMem)
	}
}
