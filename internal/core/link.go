package core

import (
	"fmt"

	"btreeperf/internal/qmodel"
)

// AnalyzeLink evaluates the Link-type (Lehman–Yao) algorithm (§5.1).
// Operations hold at most one lock at a time, so the level queues are
// independent and exponential-service (Theorem 4 / aggregate-customer
// M/M/1) throughout:
//
//   - every operation R-locks one node per level on the way down, so the
//     reader arrival rate at level i is λ divided by the fanouts above it;
//   - updates W-lock the leaf; the only W locks above the leaf come from
//     splits propagating up: λ_w(i) = q_i·λ·∏_{k<i}Pr[F(k)] scaled to the
//     level's node population;
//   - R service is the node search; W service is the node modification
//     plus — with the probability the node itself is full — a half-split.
//
// Link crossings are rare (Figure 9) and are ignored by the analysis,
// exactly as in the paper.
func AnalyzeLink(m Model, w Workload) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	s := m.Shape
	c := m.Costs
	h := s.Height
	mix := w.Mix
	lam := levelLambdas(s, w.Lambda)

	res := &Result{Algorithm: Link, Lambda: w.Lambda, Stable: true}
	res.Levels = make([]LevelResult, h)

	rWait := make([]float64, h+1)
	wWait := make([]float64, h+1)

	for i := 1; i <= h; i++ {
		var lr, lw, muR, muW float64
		if i == 1 {
			lr = mix.QS * lam[1]
			lw = (mix.QI + mix.QD) * lam[1]
			muR = 1 / c.Se(1, h)
			wi, wd := updateShares(mix.QI, mix.QD)
			// Inserts half-split a full leaf while holding its W lock;
			// deletes never restructure under merge-at-empty with
			// q_i > q_d.
			tw := wi*(c.M(h)+s.PrF(1)*c.Sp(1, h)) +
				wd*(c.M(h)+s.PrEm(1)*c.Mg(1, h))
			if tw > 0 {
				muW = 1 / tw
			}
		} else {
			lr = lam[i]
			lw = mix.QI * s.ProdPrF(i-1) * lam[i]
			muR = 1 / c.Se(i, h)
			tw := c.Mod(i, h) + s.PrF(i)*c.Sp(i, h)
			muW = 1 / tw
		}
		sol, err := qmodel.Solve(qmodel.Input{LambdaR: lr, LambdaW: lw, MuR: muR, MuW: muW})
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", i, err)
		}
		if !sol.Stable {
			res.Stable = false
		}
		rWait[i] = qmodel.MM1Wait(sol.RhoW, sol.TA)
		wWait[i] = rWait[i] + sol.RhoW*sol.RU + (1-sol.RhoW)*sol.RE

		res.Levels[i-1] = LevelResult{
			Level: i, LambdaR: lr, LambdaW: lw, MuR: muR, MuW: muW,
			RhoW: sol.RhoW, RU: sol.RU, RE: sol.RE,
			R: rWait[i], W: wWait[i], Stable: sol.Stable,
		}
	}

	// Response times: a descent R-locks one node per level; updates wait
	// for the leaf W lock, modify, and repair splits upward (rare).
	for i := 1; i <= h; i++ {
		res.RespSearch += c.Se(i, h) + rWait[i]
	}
	update := c.M(h) + wWait[1]
	for i := 2; i <= h; i++ {
		update += c.Se(i, h) + rWait[i]
	}
	res.RespInsert = update
	for j := 1; j <= h-1; j++ {
		// Split at level j: perform the half-split, then W-lock the
		// parent and insert the new pointer.
		res.RespInsert += s.ProdPrF(j) * (c.Sp(j, h) + wWait[j+1] + c.Mod(j+1, h))
	}
	res.RespDelete = update
	return res, nil
}
