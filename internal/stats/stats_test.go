package stats

import (
	"math"
	"testing"
	"testing/quick"

	"btreeperf/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !almost(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 || w.CI95() != 0 {
		t.Errorf("single sample: mean=%v var=%v ci=%v", w.Mean(), w.Variance(), w.CI95())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	err := quick.Check(func(seed uint64, split uint8) bool {
		src := xrand.New(seed)
		n := 50
		k := int(split) % n
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Float64()*100 - 50
		}
		var all, a, b Welford
		for _, x := range xs {
			all.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(&b)
		return almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Variance(), all.Variance(), 1e-9) &&
			a.N() == all.N() && a.Min() == all.Min() && a.Max() == all.Max()
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Errorf("merge empty changed accumulator: %v", a)
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Errorf("merge into empty: %v", b)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	src := xrand.New(3)
	var small, large Welford
	for i := 0; i < 5; i++ {
		small.Add(src.Float64())
	}
	for i := 0; i < 5000; i++ {
		large.Add(src.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
}

func TestTCrit(t *testing.T) {
	if !almost(tCrit95(1), 12.706, 1e-9) {
		t.Error("df=1")
	}
	if !almost(tCrit95(30), 2.042, 1e-9) {
		t.Error("df=30")
	}
	if !almost(tCrit95(1000), 1.96, 1e-9) {
		t.Error("df=1000")
	}
	if !math.IsNaN(tCrit95(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var tw TimeWeighted
	tw.Set(10, 3)
	if got := tw.Average(20); !almost(got, 3, 1e-12) {
		t.Errorf("constant signal average %v, want 3", got)
	}
}

func TestTimeWeightedSteps(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)
	tw.Set(4, 1) // 0 for 4 units
	tw.Set(6, 0) // 1 for 2 units
	// average over [0, 10]: (0*4 + 1*2 + 0*4)/10 = 0.2
	if got := tw.Average(10); !almost(got, 0.2, 1e-12) {
		t.Errorf("step average %v, want 0.2", got)
	}
	// Average is idempotent / does not consume state.
	if got := tw.Average(10); !almost(got, 0.2, 1e-12) {
		t.Errorf("second call differs: %v", got)
	}
}

func TestTimeWeightedEmptyWindow(t *testing.T) {
	var tw TimeWeighted
	if tw.Average(5) != 0 {
		t.Error("unstarted average should be 0")
	}
	tw.Set(5, 7)
	if tw.Average(5) != 0 {
		t.Error("zero-length window should be 0")
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on time going backwards")
		}
	}()
	var tw TimeWeighted
	tw.Set(5, 1)
	tw.Set(4, 1)
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 100} {
		h.Add(x)
	}
	buckets, under, over := h.Counts()
	if under != 1 || over != 2 {
		t.Errorf("under=%d over=%d", under, over)
	}
	if buckets[0] != 2 || buckets[5] != 1 || buckets[9] != 1 {
		t.Errorf("buckets = %v", buckets)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i) / 10) // uniform 0..99.9
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := h.Quantile(q)
		if !almost(got, q*100, 2) {
			t.Errorf("Quantile(%v) = %v, want ~%v", q, got, q*100)
		}
	}
	if h.Quantile(-1) != 0 {
		t.Error("q<0 should clamp to lo")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.25)
	h.Add(0.75)
	if !almost(h.Mean(), 0.5, 1e-12) {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramShapePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(6, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid shape did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if !almost(s.Mean, 3, 1e-12) || s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.CI95 <= 0 {
		t.Error("CI95 should be positive for varied samples")
	}
	empty := Summarize(nil)
	if empty.Mean != 0 || empty.N != 0 {
		t.Errorf("empty Summary = %+v", empty)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	// Median must not mutate its argument.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated input")
	}
}

func TestWelfordAgainstExponential(t *testing.T) {
	src := xrand.New(99)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(src.Exp(2))
	}
	if !almost(w.Mean(), 2, 0.05) {
		t.Errorf("exp mean %v", w.Mean())
	}
	if !almost(w.Variance(), 4, 0.3) {
		t.Errorf("exp variance %v", w.Variance())
	}
}
