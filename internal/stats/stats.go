// Package stats provides the statistical accumulators used by the
// simulator and the experiment harness: streaming mean/variance,
// confidence intervals, time-weighted averages for utilization-style
// measures, fixed-bucket histograms, and cross-replication summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates a sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 if no samples were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 for fewer than
// two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample, or 0 if empty.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample, or 0 if empty.
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of a ~95% normal-approximation confidence
// interval for the mean. For small replication counts (n <= 30) it uses a
// Student-t critical value table.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return tCrit95(w.n-1) * w.StdErr()
}

// Merge combines another accumulator into w (Chan et al. parallel update).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// String renders "mean ± ci95 (n=..)".
func (w *Welford) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", w.Mean(), w.CI95(), w.n)
}

// tCrit95 is the two-sided 95% Student-t critical value for df degrees of
// freedom; for df > 30 it returns the normal value 1.96.
func tCrit95(df int64) float64 {
	table := []float64{
		// df 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df <= int64(len(table)) {
		return table[df-1]
	}
	return 1.96
}

// TimeWeighted integrates a piecewise-constant signal over (virtual) time,
// e.g. queue length or a writer-present indicator, yielding its
// time-average. The zero value is ready to use; the first Set establishes
// the starting time.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	integral float64
	t0       float64
}

// Set records that the signal has value v from time t onward.
// Times must be non-decreasing.
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.t0 = t
		tw.lastT, tw.lastV = t, v
		return
	}
	if t < tw.lastT {
		panic(fmt.Sprintf("stats: TimeWeighted time went backwards: %v < %v", t, tw.lastT))
	}
	tw.integral += tw.lastV * (t - tw.lastT)
	tw.lastT, tw.lastV = t, v
}

// Average returns the time-average of the signal over [t0, t], flushing the
// segment since the last Set. Returns 0 if the window is empty.
func (tw *TimeWeighted) Average(t float64) float64 {
	if !tw.started || t <= tw.t0 {
		return 0
	}
	integral := tw.integral
	if t > tw.lastT {
		integral += tw.lastV * (t - tw.lastT)
	}
	return integral / (t - tw.t0)
}

// Histogram is a fixed-width bucket histogram over [lo, hi); samples outside
// the range land in saturating under/overflow buckets.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	under   int64
	over    int64
	n       int64
	sum     float64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i == len(h.buckets) { // float edge
			i--
		}
		h.buckets[i]++
	}
}

// N returns the number of samples.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an approximate q-quantile (0<=q<=1) assuming samples are
// uniform within a bucket. Under/overflow samples are pinned to the range
// bounds.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	acc := float64(h.under)
	if target <= acc {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		if target <= acc+float64(c) {
			frac := 0.0
			if c > 0 {
				frac = (target - acc) / float64(c)
			}
			return h.lo + (float64(i)+frac)*width
		}
		acc += float64(c)
	}
	return h.hi
}

// Counts returns a copy of the bucket counts plus underflow and overflow.
func (h *Histogram) Counts() (buckets []int64, under, over int64) {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out, h.under, h.over
}

// Summary reduces a set of replication results (one value per seed) to a
// mean with a confidence half-width.
type Summary struct {
	Mean float64
	CI95 float64
	N    int
	Min  float64
	Max  float64
}

// Summarize computes a Summary over the values.
func Summarize(values []float64) Summary {
	var w Welford
	for _, v := range values {
		w.Add(v)
	}
	return Summary{Mean: w.Mean(), CI95: w.CI95(), N: int(w.N()), Min: w.Min(), Max: w.Max()}
}

// Median returns the median of values (not streaming). Empty input yields 0.
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
