// Package workload generates the operation streams of the paper's
// simulator (§4): a proportion mix of search / insert / delete operations
// whose insert keys are drawn uniformly from a key space and whose delete
// and search keys target the live key population, plus the tree
// construction phase that builds the initial B-tree with the same
// insert:delete proportion as the concurrent phase.
package workload

import (
	"fmt"

	"btreeperf/internal/btree"
	"btreeperf/internal/xrand"
)

// Op is an operation kind.
type Op int

const (
	// Search looks a key up.
	Search Op = iota
	// Insert adds a key.
	Insert
	// Delete removes a key.
	Delete
	// Scan reads a key range starting at the drawn key (range scans are
	// anchored at live keys, so they traverse populated territory).
	Scan
)

func (o Op) String() string {
	switch o {
	case Search:
		return "search"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Scan:
		return "scan"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Mix holds the operation proportions q_s, q_i, q_d, q_r (must sum
// to 1). QR — range-scan share — is this serving layer's extension of
// the paper's three-op mix; QR = 0 reproduces the paper's streams
// exactly (the generator's draw order keeps a fixed seed's
// search/insert/delete sequence byte-identical whether or not the Mix
// type knows about scans).
type Mix struct {
	QS float64 // search fraction
	QI float64 // insert fraction
	QD float64 // delete fraction
	QR float64 // range-scan fraction
}

// PaperMix is the proportion used in the paper's experiments:
// q_s=.3, q_i=.5, q_d=.2.
var PaperMix = Mix{QS: 0.3, QI: 0.5, QD: 0.2}

// Validate checks the proportions.
func (m Mix) Validate() error {
	if m.QS < 0 || m.QI < 0 || m.QD < 0 || m.QR < 0 {
		return fmt.Errorf("workload: negative proportion %+v", m)
	}
	if s := m.QS + m.QI + m.QD + m.QR; s < 0.999999 || s > 1.000001 {
		return fmt.Errorf("workload: proportions sum to %v, want 1", s)
	}
	return nil
}

// UpdateShare returns q_i + q_d.
func (m Mix) UpdateShare() float64 { return m.QI + m.QD }

// Scenario returns a named mix preset for btload's -scenario flag.
// "paper" is the paper's §4 proportion; "point" is read-heavy point
// traffic; "scan-heavy" and "scan-mixed" are the query-subsystem
// scenario families (mostly scans, and scans alongside point updates).
func Scenario(name string) (Mix, error) {
	switch name {
	case "paper":
		return PaperMix, nil
	case "point":
		return Mix{QS: 0.9, QI: 0.09, QD: 0.01}, nil
	case "read-heavy":
		return Mix{QS: 0.95, QI: 0.04, QD: 0.01}, nil
	case "insert-heavy":
		return Mix{QS: 0.1, QI: 0.8, QD: 0.1}, nil
	case "scan-heavy":
		return Mix{QS: 0.05, QI: 0.04, QD: 0.01, QR: 0.9}, nil
	case "scan-mixed":
		return Mix{QS: 0.3, QI: 0.35, QD: 0.15, QR: 0.2}, nil
	default:
		return Mix{}, fmt.Errorf("workload: unknown scenario %q (want paper, point, read-heavy, insert-heavy, scan-heavy, or scan-mixed)", name)
	}
}

// KeyPool tracks the live key population with O(1) insertion and O(1)
// uniform removal, so deletes and searches can target existing keys — the
// regime Johnson & Shasha's shape results assume.
type KeyPool struct {
	keys []int64
	pos  map[int64]int
}

// NewKeyPool returns an empty pool.
func NewKeyPool() *KeyPool {
	return &KeyPool{pos: make(map[int64]int)}
}

// Len returns the population size.
func (kp *KeyPool) Len() int { return len(kp.keys) }

// Add inserts k (a duplicate is a no-op).
func (kp *KeyPool) Add(k int64) {
	if _, ok := kp.pos[k]; ok {
		return
	}
	kp.pos[k] = len(kp.keys)
	kp.keys = append(kp.keys, k)
}

// Remove deletes k, reporting whether it was present.
func (kp *KeyPool) Remove(k int64) bool {
	i, ok := kp.pos[k]
	if !ok {
		return false
	}
	last := len(kp.keys) - 1
	kp.keys[i] = kp.keys[last]
	kp.pos[kp.keys[i]] = i
	kp.keys = kp.keys[:last]
	delete(kp.pos, k)
	return true
}

// Pick returns a uniformly random live key without removing it.
// ok is false when the pool is empty.
func (kp *KeyPool) Pick(src *xrand.Source) (k int64, ok bool) {
	if len(kp.keys) == 0 {
		return 0, false
	}
	return kp.keys[src.IntN(len(kp.keys))], true
}

// PickSkewed is Pick with a zipfian index distribution: low pool slots
// are hot with exponent skew (skew <= 0 degrades to Pick). Swap-remove
// churns the slot order over time, but the hot set stays small at any
// instant, which is what a contention knob needs.
func (kp *KeyPool) PickSkewed(src *xrand.Source, skew float64) (k int64, ok bool) {
	if len(kp.keys) == 0 {
		return 0, false
	}
	return kp.keys[src.Zipf(len(kp.keys), skew)], true
}

// Take removes and returns a uniformly random live key.
func (kp *KeyPool) Take(src *xrand.Source) (k int64, ok bool) {
	k, ok = kp.Pick(src)
	if ok {
		kp.Remove(k)
	}
	return k, ok
}

// Generator produces the concurrent-phase operation stream.
type Generator struct {
	mix      Mix
	pool     *KeyPool
	src      *xrand.Source
	keySpace int64
	skew     float64 // zipfian key skew; 0 = uniform
}

// SetSkew sets the zipfian key-skew exponent s: searches, deletes, and
// scans draw their live key zipfian over the pool, inserts draw their
// new key zipfian over [0, keySpace), so accesses concentrate on a hot
// set. s = 0 (the default) is the uniform regime the paper analyzes and
// leaves the generator's draw stream byte-identical to before the knob
// existed. Call before Split; children inherit the skew.
func (g *Generator) SetSkew(s float64) { g.skew = s }

// NewGenerator builds a generator over the given live-key pool. Insert
// keys are uniform over [0, keySpace).
func NewGenerator(mix Mix, pool *KeyPool, keySpace int64, src *xrand.Source) (*Generator, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if keySpace < 1 {
		return nil, fmt.Errorf("workload: key space %d", keySpace)
	}
	return &Generator{mix: mix, pool: pool, src: src, keySpace: keySpace}, nil
}

// Next draws the next operation and its key. Deletes remove their target
// from the pool immediately so concurrent deletes do not all chase the
// same key; inserts add theirs. When the pool is empty a drawn delete,
// search, or scan degrades to an insert. The scan band sits after
// search and delete in the draw order, so with QR = 0 a fixed seed
// produces the stream the pre-scan generator produced, byte for byte.
func (g *Generator) Next() (Op, int64) {
	u := g.src.Float64()
	switch {
	case u < g.mix.QS:
		if k, ok := g.pool.PickSkewed(g.src, g.skew); ok {
			return Search, k
		}
	case u < g.mix.QS+g.mix.QD:
		if k, ok := g.pool.PickSkewed(g.src, g.skew); ok {
			g.pool.Remove(k)
			return Delete, k
		}
	case u < g.mix.QS+g.mix.QD+g.mix.QR:
		if k, ok := g.pool.PickSkewed(g.src, g.skew); ok {
			return Scan, k
		}
	}
	var k int64
	if g.skew > 0 {
		k = int64(g.src.Zipf(int(min64(g.keySpace, 1<<31)), g.skew))
	} else {
		k = g.src.Int63n(g.keySpace)
	}
	g.pool.Add(k)
	return Insert, k
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Split returns n deterministic, mutually independent generators, so n
// concurrent consumers (e.g. load-generator connections) need not share
// one generator behind a mutex. Each child draws from its own xrand stream
// (derived from the parent's seed and the child index, so a fixed parent
// seed always reproduces the same n streams) and owns a private key pool;
// the parent's live keys are dealt round-robin across the children. The
// parent must not be used after Split.
func (g *Generator) Split(n int) []*Generator {
	if n < 1 {
		panic(fmt.Sprintf("workload: Split(%d)", n))
	}
	out := make([]*Generator, n)
	for i := range out {
		out[i] = &Generator{
			mix:      g.mix,
			pool:     NewKeyPool(),
			src:      g.src.Split(uint64(i) + 1),
			keySpace: g.keySpace,
			skew:     g.skew,
		}
	}
	for j, k := range g.pool.keys {
		out[j%n].pool.Add(k)
	}
	return out
}

// Build constructs a merge-at-empty B-tree of about target keys using the
// generator's insert:delete proportion (the paper's construction phase),
// returning the tree and the resulting live-key pool.
func Build(capacity, target int, mix Mix, keySpace int64, src *xrand.Source) (*btree.Tree, *KeyPool, error) {
	if err := mix.Validate(); err != nil {
		return nil, nil, err
	}
	if mix.QI <= mix.QD {
		return nil, nil, fmt.Errorf("workload: construction needs qi > qd to grow (qi=%v qd=%v)", mix.QI, mix.QD)
	}
	tr := btree.New(capacity, btree.MergeAtEmpty)
	pool := NewKeyPool()
	pIns := mix.QI / (mix.QI + mix.QD)
	for tr.Len() < target {
		if src.Float64() < pIns || pool.Len() == 0 {
			k := src.Int63n(keySpace)
			if tr.Insert(k, uint64(k)) {
				pool.Add(k)
			}
		} else {
			if k, ok := pool.Take(src); ok {
				tr.Delete(k)
			}
		}
	}
	return tr, pool, nil
}
