package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"btreeperf/internal/xrand"
)

func TestMixValidate(t *testing.T) {
	if err := PaperMix.Validate(); err != nil {
		t.Fatalf("PaperMix invalid: %v", err)
	}
	bad := []Mix{
		{QS: 0.5, QI: 0.5, QD: 0.5},
		{QS: -0.1, QI: 0.6, QD: 0.5},
		{QS: 0.2, QI: 0.2, QD: 0.2},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Mix %+v accepted", m)
		}
	}
	if PaperMix.UpdateShare() != 0.7 {
		t.Fatalf("UpdateShare = %v", PaperMix.UpdateShare())
	}
}

func TestOpString(t *testing.T) {
	if Search.String() != "search" || Insert.String() != "insert" || Delete.String() != "delete" {
		t.Fatal("Op strings")
	}
	if Op(7).String() != "Op(7)" {
		t.Fatal("unknown Op string")
	}
}

func TestKeyPoolBasics(t *testing.T) {
	kp := NewKeyPool()
	src := xrand.New(1)
	if _, ok := kp.Pick(src); ok {
		t.Fatal("picked from empty pool")
	}
	kp.Add(5)
	kp.Add(5) // duplicate is a no-op
	kp.Add(9)
	if kp.Len() != 2 {
		t.Fatalf("Len = %d", kp.Len())
	}
	if !kp.Remove(5) {
		t.Fatal("Remove(5)")
	}
	if kp.Remove(5) {
		t.Fatal("double remove succeeded")
	}
	k, ok := kp.Pick(src)
	if !ok || k != 9 {
		t.Fatalf("Pick = %d,%v", k, ok)
	}
	k, ok = kp.Take(src)
	if !ok || k != 9 || kp.Len() != 0 {
		t.Fatalf("Take = %d,%v len=%d", k, ok, kp.Len())
	}
}

func TestKeyPoolUniformity(t *testing.T) {
	kp := NewKeyPool()
	for i := int64(0); i < 10; i++ {
		kp.Add(i)
	}
	src := xrand.New(2)
	counts := make(map[int64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		k, _ := kp.Pick(src)
		counts[k]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)/n-0.1) > 0.01 {
			t.Fatalf("key %d frequency %v", k, float64(c)/n)
		}
	}
}

func TestGeneratorProportions(t *testing.T) {
	pool := NewKeyPool()
	for i := int64(0); i < 10000; i++ {
		pool.Add(i * 2)
	}
	src := xrand.New(3)
	g, err := NewGenerator(PaperMix, pool, 1<<30, src)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Op]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		op, _ := g.Next()
		counts[op]++
	}
	for op, want := range map[Op]float64{Search: 0.3, Insert: 0.5, Delete: 0.2} {
		got := float64(counts[op]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v fraction %v, want ~%v", op, got, want)
		}
	}
}

func TestGeneratorDeleteTargetsLiveKeys(t *testing.T) {
	pool := NewKeyPool()
	live := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		pool.Add(i)
		live[i] = true
	}
	src := xrand.New(4)
	g, _ := NewGenerator(Mix{QS: 0, QI: 0.5, QD: 0.5}, pool, 1<<30, src)
	for i := 0; i < 2000; i++ {
		op, k := g.Next()
		switch op {
		case Delete:
			if !live[k] {
				t.Fatalf("delete of dead key %d", k)
			}
			delete(live, k)
		case Insert:
			live[k] = true
		}
	}
}

func TestGeneratorEmptyPoolDegradesToInsert(t *testing.T) {
	pool := NewKeyPool()
	src := xrand.New(5)
	g, _ := NewGenerator(Mix{QS: 0.5, QI: 0, QD: 0.5}, pool, 100, src)
	op, _ := g.Next()
	if op != Insert {
		t.Fatalf("first op on empty pool = %v, want insert", op)
	}
}

func TestGeneratorValidation(t *testing.T) {
	pool := NewKeyPool()
	src := xrand.New(1)
	if _, err := NewGenerator(Mix{QS: 1, QI: 1, QD: 1}, pool, 100, src); err == nil {
		t.Error("bad mix accepted")
	}
	if _, err := NewGenerator(PaperMix, pool, 0, src); err == nil {
		t.Error("zero key space accepted")
	}
}

func TestBuildReachesTarget(t *testing.T) {
	src := xrand.New(6)
	tr, pool, err := Build(13, 40000, PaperMix, 1<<31, src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 40000 {
		t.Fatalf("built %d keys", tr.Len())
	}
	if pool.Len() != tr.Len() {
		t.Fatalf("pool %d vs tree %d", pool.Len(), tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The paper's configuration yields a 5-level tree.
	if tr.Height() != 5 {
		t.Fatalf("height = %d, want 5", tr.Height())
	}
}

func TestBuildDeterministic(t *testing.T) {
	t1, _, _ := Build(13, 5000, PaperMix, 1<<31, xrand.New(9))
	t2, _, _ := Build(13, 5000, PaperMix, 1<<31, xrand.New(9))
	if t1.Len() != t2.Len() || t1.Height() != t2.Height() {
		t.Fatal("builds with identical seeds differ")
	}
	s1, s2 := t1.Stats(), t2.Stats()
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestBuildRequiresGrowth(t *testing.T) {
	if _, _, err := Build(13, 100, Mix{QS: 0, QI: 0.5, QD: 0.5}, 1000, xrand.New(1)); err == nil {
		t.Fatal("qi == qd accepted for construction")
	}
}

func TestScanMix(t *testing.T) {
	mix := Mix{QS: 0.2, QI: 0.3, QD: 0.1, QR: 0.4}
	if err := mix.Validate(); err != nil {
		t.Fatalf("scan mix invalid: %v", err)
	}
	pool := NewKeyPool()
	g, err := NewGenerator(mix, pool, 1<<20, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Op]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		op, key := g.Next()
		counts[op]++
		if op == Scan {
			// Scans anchor at live keys, never mutate the pool.
			if _, ok := pool.pos[key]; !ok {
				t.Fatalf("scan key %d not live", key)
			}
		}
	}
	got := float64(counts[Scan]) / n
	// The scan share runs slightly under q_r early on (an empty pool
	// degrades scans to inserts), so allow a loose band.
	if got < 0.35 || got > 0.45 {
		t.Fatalf("scan share %.3f, want ~0.4", got)
	}
	if Scan.String() != "scan" {
		t.Fatal("Scan string")
	}
}

// TestScanZeroShareIsPaperStream pins backward determinism: with QR=0 a
// fixed seed must draw the exact op/key stream the three-op generator
// drew, so every pre-scan experiment stays reproducible. The golden
// hash is the stream the generator produced before the scan band was
// added to the draw order.
func TestScanZeroShareIsPaperStream(t *testing.T) {
	pool := NewKeyPool()
	g, err := NewGenerator(PaperMix, pool, 1<<16, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for i := 0; i < 10000; i++ {
		op, key := g.Next()
		fmt.Fprintf(h, "%d:%d;", op, key)
	}
	const gold = uint64(0xe135c499f781a7db)
	if got := h.Sum64(); got != gold {
		t.Fatalf("QR=0 stream hash %#x, want %#x: the draw order changed and pre-scan experiments are no longer reproducible", got, gold)
	}
}

func TestScenario(t *testing.T) {
	for _, name := range []string{"paper", "point", "read-heavy", "insert-heavy", "scan-heavy", "scan-mixed"} {
		m, err := Scenario(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s mix invalid: %v", name, err)
		}
	}
	if m, _ := Scenario("paper"); m != PaperMix {
		t.Fatal("paper scenario drifted from PaperMix")
	}
	if m, _ := Scenario("scan-heavy"); m.QR < 0.5 {
		t.Fatalf("scan-heavy QR = %v", m.QR)
	}
	if _, err := Scenario("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestSkewZeroIsUniformStream pins the -zipf 0 default to the exact
// draw stream the generator produced before the skew knob existed: the
// knob must be invisible when off.
func TestSkewZeroIsUniformStream(t *testing.T) {
	pool := NewKeyPool()
	g, err := NewGenerator(PaperMix, pool, 1<<16, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	g.SetSkew(0)
	h := fnv.New64a()
	for i := 0; i < 10000; i++ {
		op, key := g.Next()
		fmt.Fprintf(h, "%d:%d;", op, key)
	}
	const gold = uint64(0xe135c499f781a7db) // TestScanZeroShareIsPaperStream's hash
	if got := h.Sum64(); got != gold {
		t.Fatalf("skew-0 stream hash %#x, want %#x", got, gold)
	}
}

// TestSkewConcentratesAccesses checks the knob does what the contention
// experiments need: with s > 0 a small fraction of distinct keys absorbs
// a large fraction of search traffic, and children inherit the skew
// through Split.
func TestSkewConcentratesAccesses(t *testing.T) {
	run := func(skew float64) (top10Share float64) {
		pool := NewKeyPool()
		for k := int64(0); k < 1000; k++ {
			pool.Add(k * 7)
		}
		g, err := NewGenerator(Mix{QS: 1, QI: 0, QD: 0}, pool, 1<<16, xrand.New(7))
		if err != nil {
			t.Fatal(err)
		}
		g.SetSkew(skew)
		g = g.Split(2)[0] // skew must survive Split
		counts := map[int64]int{}
		const draws = 20000
		for i := 0; i < draws; i++ {
			op, key := g.Next()
			if op != Search {
				t.Fatalf("pure-search mix drew %v", op)
			}
			counts[key]++
		}
		best := make([]int, 0, len(counts))
		for _, c := range counts {
			best = append(best, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(best)))
		top := 0
		for i := 0; i < 10 && i < len(best); i++ {
			top += best[i]
		}
		return float64(top) / draws
	}
	uniform := run(0)
	skewed := run(1.1)
	if skewed < 3*uniform {
		t.Errorf("zipf 1.1 top-10 share %.3f not well above uniform %.3f", skewed, uniform)
	}
	if skewed < 0.25 {
		t.Errorf("zipf 1.1 top-10 keys absorb only %.1f%% of searches", 100*skewed)
	}
}
