package workload

import (
	"testing"

	"btreeperf/internal/xrand"
)

func newSplitParent(t *testing.T, seed uint64, prime int) *Generator {
	t.Helper()
	g, err := NewGenerator(PaperMix, NewKeyPool(), 1<<31, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < prime; i++ {
		g.Next() // populate the parent pool so Split has keys to deal out
	}
	return g
}

// TestSplitReproducible verifies the satellite requirement: for a fixed
// seed, a split run is reproducible — same children, same streams.
func TestSplitReproducible(t *testing.T) {
	const n, ops = 4, 2000
	run := func() [][2]int64 {
		children := newSplitParent(t, 42, 500).Split(n)
		out := make([][2]int64, 0, n*ops)
		for _, c := range children {
			for i := 0; i < ops; i++ {
				op, k := c.Next()
				out = append(out, [2]int64{int64(op), k})
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSplitIndependentStreams checks that sibling generators do not mirror
// each other's draws.
func TestSplitIndependentStreams(t *testing.T) {
	children := newSplitParent(t, 7, 0).Split(2)
	same := 0
	const ops = 1000
	for i := 0; i < ops; i++ {
		_, k0 := children[0].Next()
		_, k1 := children[1].Next()
		if k0 == k1 {
			same++
		}
	}
	if same > ops/100 {
		t.Fatalf("%d/%d identical draws between siblings", same, ops)
	}
}

// TestSplitDealsPool verifies the parent's live keys are partitioned, not
// duplicated, across children.
func TestSplitDealsPool(t *testing.T) {
	parent := newSplitParent(t, 11, 1000)
	parentKeys := parent.pool.Len()
	if parentKeys == 0 {
		t.Fatal("parent pool empty after priming")
	}
	children := parent.Split(3)
	total := 0
	seen := make(map[int64]bool)
	for _, c := range children {
		total += c.pool.Len()
		for _, k := range c.pool.keys {
			if seen[k] {
				t.Fatalf("key %d dealt to two children", k)
			}
			seen[k] = true
		}
	}
	if total != parentKeys {
		t.Fatalf("children hold %d keys, parent had %d", total, parentKeys)
	}
	// Round-robin deal: children sizes differ by at most one.
	for _, c := range children {
		if d := c.pool.Len() - parentKeys/3; d < 0 || d > 1 {
			t.Fatalf("uneven deal: child has %d of %d", c.pool.Len(), parentKeys)
		}
	}
}

func TestSplitValidation(t *testing.T) {
	g := newSplitParent(t, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Split(0) did not panic")
		}
	}()
	g.Split(0)
}
