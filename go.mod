module btreeperf

go 1.24
