package btreeperf_test

// One benchmark per figure of the paper's evaluation (Figures 3–16): each
// runs that figure's experiment in quick mode (reduced sweep and
// replication) and reports a headline metric from the regenerated series,
// so `go test -bench .` re-derives every result. The full-resolution
// tables are produced by cmd/btfigures.
//
// The trailing benchmarks are the real-time library micro-benchmarks: the
// modern, wall-clock analogue of Figure 12's algorithm comparison.

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"

	"btreeperf"
	"btreeperf/internal/experiments"
	"btreeperf/internal/table"
	"btreeperf/internal/xrand"
)

// benchOptions keeps per-figure bench runtime moderate.
var benchOptions = experiments.Options{Quick: true, Seeds: 1, Ops: 1500}

// runFigure executes one figure per benchmark iteration and reports the
// named cell of the last row as a metric.
func runFigure(b *testing.B, id string, metricCol int, metricName string) {
	f, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("figure %s not registered", id)
	}
	var tb *table.Table
	for i := 0; i < b.N; i++ {
		var err error
		tb, err = f.Run(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(tb.Rows) == 0 {
		b.Fatal("no rows")
	}
	last := tb.Rows[len(tb.Rows)-1]
	if v, err := strconv.ParseFloat(last[metricCol], 64); err == nil {
		b.ReportMetric(v, metricName)
	}
}

func BenchmarkFigure03(b *testing.B) { runFigure(b, "fig03", 2, "sim_insert_resp") }
func BenchmarkFigure04(b *testing.B) { runFigure(b, "fig04", 2, "sim_search_resp") }
func BenchmarkFigure05(b *testing.B) { runFigure(b, "fig05", 2, "sim_insert_resp") }
func BenchmarkFigure06(b *testing.B) { runFigure(b, "fig06", 2, "sim_search_resp") }
func BenchmarkFigure07(b *testing.B) { runFigure(b, "fig07", 2, "sim_insert_resp") }
func BenchmarkFigure08(b *testing.B) { runFigure(b, "fig08", 2, "sim_search_resp") }
func BenchmarkFigure09(b *testing.B) { runFigure(b, "fig09", 5, "crossings_per_op") }
func BenchmarkFigure10(b *testing.B) { runFigure(b, "fig10", 2, "sim_root_rho_w") }
func BenchmarkFigure11(b *testing.B) { runFigure(b, "fig11", 1, "max_throughput_D20") }
func BenchmarkFigure12(b *testing.B) { runFigure(b, "fig12", 3, "link_model_resp") }
func BenchmarkFigure13(b *testing.B) { runFigure(b, "fig13", 3, "rule1_lambda50") }
func BenchmarkFigure14(b *testing.B) { runFigure(b, "fig14", 3, "rule3_lambda50") }
func BenchmarkFigure15(b *testing.B) { runFigure(b, "fig15", 3, "naive_model_resp") }
func BenchmarkFigure16(b *testing.B) { runFigure(b, "fig16", 3, "naive_model_resp") }

// ---------------------------------------------------------------------------
// Analytical framework micro-benchmarks.

func BenchmarkAnalyzeNLC(b *testing.B) {
	m, err := btreeperf.NewModel(40000, 13, btreeperf.PaperCosts(5), 0.5, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	w := btreeperf.Workload{Lambda: 0.3, Mix: btreeperf.PaperMix}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := btreeperf.Analyze(btreeperf.NLC, m, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxThroughput(b *testing.B) {
	m, err := btreeperf.NewModel(40000, 13, btreeperf.PaperCosts(5), 0.5, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	mix := btreeperf.Workload{Mix: btreeperf.PaperMix}
	for i := 0; i < b.N; i++ {
		if _, err := btreeperf.MaxThroughput(btreeperf.NLC, m, mix, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures simulated-operations throughput of the DES.
func BenchmarkSimulator(b *testing.B) {
	for _, alg := range []btreeperf.Algorithm{btreeperf.NLC, btreeperf.Link} {
		b.Run(alg.String(), func(b *testing.B) {
			cfg := btreeperf.PaperSim(alg, 0.1, 5)
			cfg.InitialItems = 4000
			cfg.Ops = 2000
			cfg.Warmup = 200
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				if _, err := btreeperf.RunSim(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cfg.Ops), "sim_ops/iter")
		})
	}
}

// ---------------------------------------------------------------------------
// Real-time concurrent tree: the wall-clock Figure 12.

// benchTreeParallel drives a pre-populated tree with the paper's mix from
// all procs.
func benchTreeParallel(b *testing.B, alg btreeperf.TreeAlgorithm, cap int) {
	tree := btreeperf.NewTree(cap, alg)
	src := xrand.New(1)
	const prefill = 100_000
	for i := 0; i < prefill; i++ {
		tree.Insert(src.Int63n(1<<40), 1)
	}
	var seedCtr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := xrand.New(seedCtr.Add(1) * 7919)
		for pb.Next() {
			k := r.Int63n(1 << 40)
			switch {
			case r.Float64() < 0.3:
				tree.Search(k)
			case r.Float64() < 0.5/0.7:
				tree.Insert(k, 1)
			default:
				tree.Delete(k)
			}
		}
	})
}

func BenchmarkTreeMixedParallel(b *testing.B) {
	for _, alg := range []btreeperf.TreeAlgorithm{
		btreeperf.LockCoupling, btreeperf.Optimistic, btreeperf.LinkType,
	} {
		for _, cap := range []int{13, 128} {
			b.Run(fmt.Sprintf("%v/cap%d", alg, cap), func(b *testing.B) {
				benchTreeParallel(b, alg, cap)
			})
		}
	}
}

func BenchmarkTreeSearchParallel(b *testing.B) {
	for _, alg := range []btreeperf.TreeAlgorithm{
		btreeperf.LockCoupling, btreeperf.Optimistic, btreeperf.LinkType,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			tree := btreeperf.NewTree(64, alg)
			src := xrand.New(1)
			for i := 0; i < 100_000; i++ {
				tree.Insert(src.Int63n(1<<40), 1)
			}
			var seedCtr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := xrand.New(seedCtr.Add(1) * 104729)
				for pb.Next() {
					tree.Search(r.Int63n(1 << 40))
				}
			})
		})
	}
}

// BenchmarkDiskTree measures the disk-backed Lehman–Yao tree at two
// buffer-pool sizes (cold vs resident) — the wall-clock counterpart of the
// §8 LRU-buffering analysis.
func BenchmarkDiskTree(b *testing.B) {
	for _, pool := range []int{32, 4096} {
		b.Run(fmt.Sprintf("search/pool%d", pool), func(b *testing.B) {
			tree, err := btreeperf.OpenDiskTree(
				b.TempDir()+"/bench.db",
				btreeperf.DiskTreeOptions{Cap: 64, CacheNodes: pool})
			if err != nil {
				b.Fatal(err)
			}
			defer tree.Close()
			src := xrand.New(1)
			keys := make([]int64, 0, 50000)
			for len(keys) < 50000 {
				k := src.Int63n(1 << 30)
				if fresh, err := tree.Insert(k, 1); err != nil {
					b.Fatal(err)
				} else if fresh {
					keys = append(keys, k)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tree.Search(keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(tree.CacheStats().HitRatio(), "hit_ratio")
		})
	}
}

func BenchmarkTreeInsertSequential(b *testing.B) {
	for _, alg := range []btreeperf.TreeAlgorithm{
		btreeperf.LockCoupling, btreeperf.Optimistic, btreeperf.LinkType,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			tree := btreeperf.NewTree(64, alg)
			src := xrand.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree.Insert(src.Int63n(1<<50), 1)
			}
		})
	}
}
