// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document suitable for committing as a tracked benchmark
// baseline and for machine comparison across runs:
//
//	go test ./internal/server -bench . -benchmem -count 3 | benchjson -note "..." > results/BENCH_serving.json
//
// Every metric go test printed (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units such as p50_us) is carried through. Repeated runs
// of the same benchmark (-count > 1) are collapsed to their per-metric
// median, so a committed baseline is robust to one noisy run; ops_per_sec
// is derived from the median ns/op. The raw text input remains the
// benchstat-comparable record — this JSON is the tracked summary.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name      string             `json:"name"`
	Runs      int                `json:"runs"`
	OpsPerSec float64            `json:"ops_per_sec,omitempty"`
	Metrics   map[string]float64 `json:"metrics"`
}

type report struct {
	Note       string      `json:"note,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	note := flag.String("note", "", "free-form provenance note embedded in the report")
	flag.Parse()

	rep := report{Note: *note}
	samples := map[string]map[string][]float64{} // name -> unit -> values
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, units := parseBenchLine(line)
			if name == "" {
				continue
			}
			if _, seen := samples[name]; !seen {
				samples[name] = map[string][]float64{}
				order = append(order, name)
			}
			for unit, v := range units {
				samples[name][unit] = append(samples[name][unit], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	for _, name := range order {
		b := benchmark{Name: name, Metrics: map[string]float64{}}
		for unit, vals := range samples[name] {
			if len(vals) > b.Runs {
				b.Runs = len(vals)
			}
			b.Metrics[unit] = median(vals)
		}
		if ns := b.Metrics["ns/op"]; ns > 0 {
			b.OpsPerSec = 1e9 / ns
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line:
//
//	BenchmarkX/sub-4  1234  987 ns/op  22 B/op  0 allocs/op  145.2 p50_us
//
// i.e. a name, an iteration count, then (value, unit) pairs — whatever
// metrics the run reported, in any order.
func parseBenchLine(line string) (string, map[string]float64) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return "", nil
	}
	name := strings.TrimSuffix(f[0], fmt.Sprintf("-%d", numCPUSuffix(f[0])))
	units := map[string]float64{}
	iters, err := strconv.ParseFloat(f[1], 64)
	if err != nil {
		return "", nil
	}
	units["iterations"] = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", nil
		}
		units[f[i+1]] = v
	}
	return name, units
}

// numCPUSuffix extracts the trailing -N GOMAXPROCS tag from a benchmark
// name, or 0 if there is none (the -0 suffix never occurs, so TrimSuffix
// with it is a no-op).
func numCPUSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
