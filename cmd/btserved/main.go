// Command btserved serves the concurrent B-tree as a network key-value
// store, with the paper's lock-queue telemetry measured live.
//
//	btserved -alg link-type -cap 64 -listen :9400 -http :9401 -workers 8
//
// The binary protocol (see internal/server) listens on -listen; the
// telemetry endpoints /metrics, /debug/model, and /healthz listen on
// -http. The server tracks, per tree level, the model's λ_r, λ_w, μ_r,
// μ_w, queue waits, and ρ_w, evaluates the paper's queueing model at
// the measured parameters, and warns once the root's writer utilization
// crosses .5 — the effective maximum arrival rate of §6's rules of
// thumb.
//
// The serving layer defends itself: connections past -max-conns are
// refused with a Busy frame, idle or byte-trickling connections are
// reaped after -idle-timeout, peers that stop draining responses are
// cut after -write-timeout, a full worker queue sheds with Busy after
// -admit-timeout, and the overload governor sheds update traffic with
// Overload frames while measured root ρ_w stays above -governor-rho
// (the paper's §6 saturation threshold), recovering hysteretically.
//
// -pprof mounts net/http/pprof on the telemetry server (/debug/pprof/),
// exposing CPU, heap, goroutine, mutex, and block profiles of the live
// serving path; -pprof-block-rate and -pprof-mutex-frac turn on the
// runtime's block and mutex sampling for the latter two.
//
// -chaos wraps the listener in the internal/faults injector for
// self-inflicted failure testing:
//
//	btserved -chaos 'latency=100us,preset=0.001,pdrop=0.01,seed=7'
//
// SIGINT/SIGTERM drain gracefully: accepted requests are answered before
// the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/faults"
	"btreeperf/internal/server"
)

func main() {
	var (
		algName  = flag.String("alg", "link-type", "algorithm: lock-coupling, optimistic, link-type, olc")
		capacity = flag.Int("cap", 64, "node capacity (items per node)")
		listen   = flag.String("listen", ":9400", "binary protocol listen address")
		httpAddr = flag.String("http", ":9401", "telemetry listen address (/metrics, /debug/model, /healthz); empty disables")
		shards   = flag.Int("shards", 1, "keyspace shards, each an independent engine with its own worker pool and governor")
		workers  = flag.Int("workers", 0, "worker pool size per shard (0 = GOMAXPROCS/shards)")
		depth    = flag.Int("depth", 128, "per-connection pipeline bound")
		prefill  = flag.Int("prefill", 0, "keys inserted before serving")
		maxBatch = flag.Int("max-batch", 0, "max requests dispatched to the worker pool as one batch (0 = default)")

		pprofOn        = flag.Bool("pprof", false, "mount net/http/pprof on the telemetry server under /debug/pprof/")
		pprofBlockRate = flag.Int("pprof-block-rate", 0, "block profile rate in ns per sampled blocking event (0 disables; needs -pprof)")
		pprofMutexFrac = flag.Int("pprof-mutex-frac", 0, "mutex profile sampling: 1/n contention events recorded (0 disables; needs -pprof)")

		maxConns     = flag.Int("max-conns", 0, "connection cap, refused with Busy past it (0 = unlimited)")
		idleTimeout  = flag.Duration("idle-timeout", server.DefaultIdleTimeout, "reap connections idle this long (0 disables)")
		writeTimeout = flag.Duration("write-timeout", server.DefaultWriteTimeout, "cut peers that stall response writes this long (0 disables)")
		admitTimeout = flag.Duration("admit-timeout", server.DefaultAdmitTimeout, "shed Busy after waiting this long for a queue slot (0 = fail-fast)")
		queueDepth   = flag.Int("queue-depth", 0, "worker queue bound (0 = 4x workers)")

		govOff      = flag.Bool("governor-off", false, "disable the overload governor")
		govRho      = flag.Float64("governor-rho", server.SaturationRho, "root rho_w above which update traffic is shed")
		govExit     = flag.Float64("governor-exit-rho", 0, "root rho_w below which shedding may stop (0 = 0.8x governor-rho)")
		govInterval = flag.Duration("governor-interval", 0, "rho_w sampling interval (0 = 250ms)")
		govRecover  = flag.Int("governor-recover", 0, "consecutive below-exit samples before recovery (0 = 4)")

		chaosSpec = flag.String("chaos", "", "fault-injection spec for the listener, e.g. 'latency=100us,preset=0.001,pdrop=0.01,seed=7'")

		engineName = flag.String("engine", "mem", "storage engine: mem (volatile) or disk (durable, group-committed)")
		path       = flag.String("path", "", "disk engine data file (required with -engine disk)")
		fsyncMode  = flag.String("fsync", "batch", "disk engine fsync policy: batch (group commit, one fsync per batch) or op (fsync every mutation)")
		ckptOps    = flag.Int64("checkpoint-ops", 0, "disk engine: mutations of replay debt that trigger a checkpoint (0 = default 262144, negative disables)")
		ckptMode   = flag.String("checkpoint-mode", "inc", "disk engine checkpoint mode: inc (incremental, concurrent with serving, bounded pause) or stw (stop-the-world baseline)")
		ckptChunk  = flag.Int("checkpoint-chunk", 4096, "disk engine: keys walked per latched chunk of an incremental checkpoint")
		cacheNodes = flag.Int("cache-nodes", 0, "disk engine buffer-pool size in nodes (0 = default 4096)")

		indexOn = flag.Bool("index", false, "maintain the secondary value index (enables the lookup op; rebuilt from the primary at startup)")

		replListen  = flag.String("repl-listen", "", "replication hub listen address: lead here (requires -engine disk), or with -follow, the address this process ships from after promotion")
		follow      = flag.String("follow", "", "follow the leader whose replication hub is at this address (mutations answer NotLeader; reads serve with bounded staleness)")
		replRetain  = flag.Int64("repl-retain-mb", 64, "per-shard oplog retention budget in MiB; followers farther behind than retained history resync via snapshot")
		replState   = flag.String("repl-state", "", "follower sidecar file persisting {epoch, applied seqs} across restarts (default: derived from -path for disk followers; mem followers never persist)")
		replResync  = flag.Bool("resync", false, "discard persisted replication state and resync from a full leader snapshot")
		replAcks    = flag.Int("repl-acks", 0, "semi-sync: acknowledge mutations only after this many followers applied them (0 = async)")
		replAckWait = flag.Duration("repl-ack-timeout", 0, "semi-sync wait bound; a batch missing it answers Busy though locally durable (0 = default 2s)")
	)
	flag.Parse()

	alg, err := parseAlg(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btserved:", err)
		os.Exit(2)
	}

	// CLI semantics: 0 disables a timeout. Config semantics: 0 means
	// default, negative disables. Translate.
	cliTimeout := func(d time.Duration) time.Duration {
		if d == 0 {
			return -1
		}
		return d
	}

	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "btserved: -shards %d (want >= 1)\n", *shards)
		os.Exit(2)
	}

	// Disk mode builds one engine per shard. A single shard keeps the
	// legacy layout (-path is the data file); with -shards=N the path is
	// a directory holding one subdirectory per shard, so each shard gets
	// its own pagestore and group-commit journal.
	var engines []server.Engine
	switch *engineName {
	case "mem":
	case "disk":
		if *fsyncMode != "batch" && *fsyncMode != "op" {
			fmt.Fprintf(os.Stderr, "btserved: -fsync %q (want batch or op)\n", *fsyncMode)
			os.Exit(2)
		}
		if *ckptMode != server.CheckpointIncremental && *ckptMode != server.CheckpointSTW {
			fmt.Fprintf(os.Stderr, "btserved: -checkpoint-mode %q (want %s or %s)\n",
				*ckptMode, server.CheckpointIncremental, server.CheckpointSTW)
			os.Exit(2)
		}
		if *ckptChunk <= 0 {
			fmt.Fprintf(os.Stderr, "btserved: -checkpoint-chunk %d (want > 0: an incremental checkpoint must make progress each latched chunk)\n", *ckptChunk)
			os.Exit(2)
		}
		if *cacheNodes < 0 {
			fmt.Fprintf(os.Stderr, "btserved: -cache-nodes %d (want >= 0)\n", *cacheNodes)
			os.Exit(2)
		}
		// A positive threshold below the batch size would demand a
		// checkpoint mid-batch, which group commit can never satisfy:
		// every committed batch would immediately re-cross the threshold.
		effBatch := int64(*maxBatch)
		if effBatch <= 0 {
			effBatch = int64(server.DefaultMaxBatch)
		}
		if *ckptOps > 0 && *ckptOps < effBatch {
			fmt.Fprintf(os.Stderr, "btserved: -checkpoint-ops %d is below the commit batch size %d; every batch would re-cross the threshold (raise -checkpoint-ops or lower -max-batch)\n",
				*ckptOps, effBatch)
			os.Exit(2)
		}
		for i := 0; i < *shards; i++ {
			p := *path
			if *shards > 1 {
				dir := filepath.Join(*path, fmt.Sprintf("shard-%d", i))
				if err := os.MkdirAll(dir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, "btserved:", err)
					os.Exit(1)
				}
				p = filepath.Join(dir, "tree.db")
			}
			diskEng, err := server.NewDiskEngine(server.DiskEngineConfig{
				Path:            p,
				Cap:             *capacity,
				CacheNodes:      *cacheNodes,
				SyncEveryOp:     *fsyncMode == "op",
				CheckpointOps:   *ckptOps,
				CheckpointMode:  *ckptMode,
				CheckpointChunk: *ckptChunk,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "btserved:", err)
				os.Exit(1)
			}
			engines = append(engines, diskEng)
			fmt.Fprintf(os.Stderr, "btserved: disk engine at %s: %d keys, %d ops recovered, fsync=%s\n",
				p, diskEng.Len(), diskEng.Recovered(), *fsyncMode)
		}
	default:
		fmt.Fprintf(os.Stderr, "btserved: unknown engine %q (want mem or disk)\n", *engineName)
		os.Exit(2)
	}

	cfg := server.Config{
		Algorithm:    alg,
		Shards:       *shards,
		Capacity:     *capacity,
		Workers:      *workers,
		Depth:        *depth,
		Prefill:      *prefill,
		MaxBatch:     *maxBatch,
		Index:        *indexOn,
		MaxConns:     *maxConns,
		IdleTimeout:  cliTimeout(*idleTimeout),
		WriteTimeout: cliTimeout(*writeTimeout),
		AdmitTimeout: cliTimeout(*admitTimeout), // CLI 0 = fail-fast = Config negative
		QueueDepth:   *queueDepth,
		Governor: server.GovernorConfig{
			Disabled:     *govOff,
			Rho:          *govRho,
			ExitRho:      *govExit,
			Interval:     *govInterval,
			RecoverTicks: *govRecover,
		},
		ReplAcks:       *replAcks,
		ReplAckTimeout: *replAckWait,
	}
	switch len(engines) {
	case 0:
	case 1:
		cfg.Engine = engines[0]
	default:
		cfg.Engines = engines
	}
	s := server.New(cfg)

	// Replication wiring: leader hub, follower applier, or a promotable
	// follower (both flags). See cmd/btserved/repl.go.
	statePath := *replState
	if statePath == "" && (*follow != "" || *replListen != "") && *engineName == "disk" {
		if *shards > 1 {
			statePath = filepath.Join(*path, "repl-state.json")
		} else {
			statePath = *path + ".repl"
		}
	}
	role, err := setupRepl(s, replOptions{
		Listen:     *replListen,
		Follow:     *follow,
		RetainMB:   *replRetain,
		StatePath:  statePath,
		Resync:     *replResync,
		DiskEngine: *engineName == "disk",
	}, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "btserved: "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "btserved:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btserved:", err)
		os.Exit(1)
	}

	var inj *faults.Injector
	if *chaosSpec != "" {
		fc, err := faults.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btserved:", err)
			os.Exit(2)
		}
		inj = faults.New(fc)
		ln = inj.Listener(ln)
		fmt.Fprintf(os.Stderr, "btserved: chaos injection on: %s\n", *chaosSpec)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	var hs *http.Server
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btserved:", err)
			os.Exit(1)
		}
		handler := s.Handler()
		if *pprofOn {
			handler = s.HandlerWithProfiling()
			if *pprofBlockRate > 0 {
				runtime.SetBlockProfileRate(*pprofBlockRate)
			}
			if *pprofMutexFrac > 0 {
				runtime.SetMutexProfileFraction(*pprofMutexFrac)
			}
			fmt.Fprintf(os.Stderr, "btserved: pprof on http://%s/debug/pprof/ (block-rate=%d mutex-frac=%d)\n",
				hln.Addr(), *pprofBlockRate, *pprofMutexFrac)
		}
		hs = &http.Server{Handler: handler}
		go hs.Serve(hln)
		fmt.Fprintf(os.Stderr, "btserved: telemetry on http://%s/metrics, /debug/model, /healthz\n", hln.Addr())
	}

	fmt.Fprintf(os.Stderr, "btserved: %s tree (cap %d, prefill %d, shards %d) serving on %s\n",
		alg, *capacity, *prefill, s.NumShards(), ln.Addr())
	if err := s.Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "btserved:", err)
		os.Exit(1)
	}
	if inj != nil {
		fmt.Fprintf(os.Stderr, "btserved: chaos injected: %s\n", inj.Stats())
	}
	// Shutdown order matters: stop the telemetry listener before closing
	// the engines, so no new scrape can begin against a closing engine
	// (Server.Close additionally excludes any scrape already in flight
	// via the lifecycle lock). Serve has already drained — every acked
	// batch's group commit returned before it did.
	if hs != nil {
		hs.Close()
	}
	role.shutdown()
	keys := s.Len()
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "btserved: engine close:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "btserved: drained; %d keys in tree at exit\n", keys)
}

func parseAlg(name string) (cbtree.Algorithm, error) {
	switch name {
	case "lock-coupling", "lc", "naive":
		return cbtree.LockCoupling, nil
	case "optimistic", "opt":
		return cbtree.Optimistic, nil
	case "link-type", "link", "ly":
		return cbtree.LinkType, nil
	case "olc", "optimistic-lock-coupling":
		return cbtree.OLC, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want lock-coupling, optimistic, link-type, or olc)", name)
	}
}
