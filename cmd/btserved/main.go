// Command btserved serves the concurrent B-tree as a network key-value
// store, with the paper's lock-queue telemetry measured live.
//
//	btserved -alg link-type -cap 64 -listen :9400 -http :9401 -workers 8
//
// The binary protocol (see internal/server) listens on -listen; the
// telemetry endpoints /metrics and /debug/model listen on -http. The
// server tracks, per tree level, the model's λ_r, λ_w, μ_r, μ_w, queue
// waits, and ρ_w, evaluates the paper's queueing model at the measured
// parameters, and warns once the root's writer utilization crosses .5 —
// the effective maximum arrival rate of §6's rules of thumb.
//
// SIGINT/SIGTERM drain gracefully: accepted requests are answered before
// the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"btreeperf/internal/cbtree"
	"btreeperf/internal/server"
)

func main() {
	var (
		algName  = flag.String("alg", "link-type", "algorithm: lock-coupling, optimistic, link-type")
		capacity = flag.Int("cap", 64, "node capacity (items per node)")
		listen   = flag.String("listen", ":9400", "binary protocol listen address")
		httpAddr = flag.String("http", ":9401", "telemetry listen address (/metrics, /debug/model); empty disables")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		depth    = flag.Int("depth", 128, "per-connection pipeline bound")
		prefill  = flag.Int("prefill", 0, "keys inserted before serving")
	)
	flag.Parse()

	alg, err := parseAlg(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btserved:", err)
		os.Exit(2)
	}

	s := server.New(server.Config{
		Algorithm: alg,
		Capacity:  *capacity,
		Workers:   *workers,
		Depth:     *depth,
		Prefill:   *prefill,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btserved:", err)
		os.Exit(1)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btserved:", err)
			os.Exit(1)
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(hln)
		defer hs.Close()
		fmt.Fprintf(os.Stderr, "btserved: telemetry on http://%s/metrics and /debug/model\n", hln.Addr())
	}

	fmt.Fprintf(os.Stderr, "btserved: %s tree (cap %d, prefill %d) serving on %s\n",
		alg, *capacity, *prefill, ln.Addr())
	if err := s.Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, "btserved:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "btserved: drained; %d keys in tree at exit\n", s.Tree().Len())
}

func parseAlg(name string) (cbtree.Algorithm, error) {
	switch name {
	case "lock-coupling", "lc", "naive":
		return cbtree.LockCoupling, nil
	case "optimistic", "opt":
		return cbtree.Optimistic, nil
	case "link-type", "link", "ly":
		return cbtree.LinkType, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want lock-coupling, optimistic, or link-type)", name)
	}
}
