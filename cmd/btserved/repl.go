package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"btreeperf/internal/repl"
	"btreeperf/internal/server"
)

// sidecarState is the node's persisted replication lineage. On a
// follower it is the applied position: which leader epoch the seqs
// belong to and how far each shard got. On a leader it is the epoch the
// node leads (seqs empty) — persisted so that when a KILLED leader's
// disk rejoins the cluster as a follower, its hello presents the dead
// lineage's epoch and the new leader forces a snapshot resync instead
// of tailing oplog onto diverged state (the old disk may hold writes
// the new leader never acknowledged). It lives NEXT TO the engine, not
// inside it, because the follower's own journal numbers local appends
// (snapshot loads included), which is not the leader's sequence space.
type sidecarState struct {
	ID    uint64  `json:"id"`    // persistent node identity
	Epoch uint64  `json:"epoch"` // lineage: leading it, or applying from it
	Seqs  []int64 `json:"seqs"`  // per-shard applied leader seqs (followers)
}

// sidecar persists sidecarState atomically (tmp + rename), throttled so
// the applier's per-batch progress hook stays cheap.
type sidecar struct {
	path string
	id   uint64

	mu   sync.Mutex
	last time.Time
}

// loadSidecar reads the state file; a missing file is a fresh follower
// (zero epoch forces a full snapshot resync against any live leader).
func loadSidecar(path string) (sidecarState, error) {
	var st sidecarState
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// save writes the state if forced or the throttle window has passed.
// Safe ordering: the applier calls this only after Apply committed, so
// the file never claims a seq the engine hasn't made durable.
func (sc *sidecar) save(epoch uint64, seqs []int64, force bool) {
	if sc == nil || sc.path == "" {
		return
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	now := time.Now()
	if !force && now.Sub(sc.last) < 200*time.Millisecond {
		return
	}
	sc.last = now
	data, err := json.Marshal(sidecarState{ID: sc.id, Epoch: epoch, Seqs: seqs})
	if err != nil {
		return
	}
	tmp := sc.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "btserved: repl state:", err)
		return
	}
	if err := os.Rename(tmp, sc.path); err != nil {
		fmt.Fprintln(os.Stderr, "btserved: repl state:", err)
	}
}

// replRole is the process's replication wiring, built before Serve and
// torn down after it drains.
type replRole struct {
	s   *server.Server
	hub *repl.Hub
	ap  *repl.Applier
	sc  *sidecar

	mu          sync.Mutex
	promotedHub *repl.Hub
}

// replOptions carries the parsed replication flags.
type replOptions struct {
	Listen     string // hub listener (leader now, or after promotion)
	Follow     string // leader hub address (follower mode)
	RetainMB   int64  // oplog retention budget per shard
	StatePath  string // follower sidecar file ("" = don't persist)
	Resync     bool   // ignore persisted state, force snapshot resync
	DiskEngine bool   // engines are journal-backed
}

// newEpoch mints a lineage identifier for a fresh or promoted leader.
// Wall-clock nanos are unique enough across restarts of one deployment,
// and monotone enough that a promoted follower's epoch differs from the
// dead leader's — equality is all the protocol checks.
func newEpoch() uint64 { return uint64(time.Now().UnixNano()) }

// setupRepl wires the process's replication role onto s. Leader mode
// (-repl-listen without -follow) starts the hub immediately; follower
// mode (-follow) starts the applier, and if -repl-listen is also given,
// pre-opens the hub listener and installs a promote hook so POST
// /promote can flip the process to leading without a restart.
func setupRepl(s *server.Server, opt replOptions, logf func(string, ...any)) (*replRole, error) {
	r := &replRole{s: s}
	budget := opt.RetainMB << 20

	// Both roles read the sidecar: a follower for its resume position, a
	// leader only for its persistent identity (a fresh epoch is minted
	// every time a node starts leading — the previous lineage might have
	// diverged past what this disk can prove).
	var st sidecarState
	if opt.StatePath != "" && opt.DiskEngine && !opt.Resync {
		var err error
		if st, err = loadSidecar(opt.StatePath); err != nil {
			return nil, err
		}
	}
	if st.ID == 0 {
		st.ID = uint64(time.Now().UnixNano())
	}
	if opt.Resync {
		st.Epoch, st.Seqs = 0, nil
	}
	if opt.DiskEngine {
		r.sc = &sidecar{path: opt.StatePath, id: st.ID}
	}

	if opt.Follow == "" {
		if opt.Listen == "" {
			return r, nil // unreplicated
		}
		hub, err := s.StartHub(newEpoch(), budget, logf)
		if err != nil {
			return nil, fmt.Errorf("repl leader: %w", err)
		}
		ln, err := net.Listen("tcp", opt.Listen)
		if err != nil {
			hub.Close()
			return nil, err
		}
		go hub.Serve(ln)
		r.hub = hub
		// Record the lineage we lead: if this process is killed and its
		// disk rejoins as a follower, the stale epoch in the sidecar is
		// what forces the snapshot resync over tailing onto divergence.
		r.sc.save(hub.Epoch(), nil, true)
		fmt.Fprintf(os.Stderr, "btserved: repl leader epoch=%d shipping on %s (retain %d MiB/shard)\n",
			hub.Epoch(), ln.Addr(), opt.RetainMB)
		return r, nil
	}

	// Follower. Resume position comes from the sidecar only when the
	// engine below it actually retained the applied state: a mem
	// follower restarts empty, so resuming its seqs would silently serve
	// holes — it must resync from scratch instead. A sidecar written by
	// a dead LEADER carries its epoch with no seqs: the mismatch against
	// the live leader's epoch forces the full resync that discards this
	// disk's possibly-diverged tail.

	ap := repl.NewApplier(repl.ApplierConfig{
		Addr:   opt.Follow,
		ID:     st.ID,
		Epoch:  st.Epoch,
		Seqs:   st.Seqs,
		Shards: s.ApplierShards(),
		OnProgress: func(epoch uint64, seqs []int64) {
			r.sc.save(epoch, seqs, false)
		},
		Logf: logf,
	})
	s.AttachFollower(ap)
	r.ap = ap
	go ap.Run()
	fmt.Fprintf(os.Stderr, "btserved: following %s id=%d epoch=%d seqs=%v\n",
		opt.Follow, st.ID, st.Epoch, st.Seqs)

	if opt.Listen != "" {
		// Own the hub address now so promotion can't lose a port race;
		// connections queue in the accept backlog until the hub serves.
		ln, err := net.Listen("tcp", opt.Listen)
		if err != nil {
			ap.Stop()
			return nil, err
		}
		s.SetPromoteHook(func() (uint64, error) {
			ap.Stop()
			ap.Wait() // quiesce: no straggler apply may race leader writes
			s.DetachFollower()
			r.sc.save(ap.Epoch(), ap.AppliedSeqs(), true)
			hub, err := s.StartHub(newEpoch(), budget, logf)
			if err != nil {
				return 0, fmt.Errorf("promote: %w", err)
			}
			go hub.Serve(ln)
			r.sc.save(hub.Epoch(), nil, true) // now leading this lineage
			r.mu.Lock()
			r.promotedHub = hub
			r.mu.Unlock()
			fmt.Fprintf(os.Stderr, "btserved: promoted to leader epoch=%d shipping on %s\n",
				hub.Epoch(), ln.Addr())
			return hub.Epoch(), nil
		})
	}
	return r, nil
}

// shutdown tears the role down after Serve has drained.
func (r *replRole) shutdown() {
	if r.hub != nil {
		r.hub.Close()
	}
	r.mu.Lock()
	ph := r.promotedHub
	r.mu.Unlock()
	if ph != nil {
		ph.Close()
	}
	if r.ap != nil {
		r.ap.Stop()
		r.ap.Wait()
		// A promoted node's sidecar already records the lineage it
		// leads; overwriting it with the pre-promotion applied position
		// would claim follower state this node has since written past.
		if ph == nil {
			r.sc.save(r.ap.Epoch(), r.ap.AppliedSeqs(), true)
		}
	}
}
