// Command btquery runs the query ops against a btserved instance: paged
// range scans, seeks, and secondary-index lookups, following
// continuation tokens until the range is exhausted.
//
//	btquery -addr 127.0.0.1:9400 scan 0 1000          # print every key in [0, 1000)
//	btquery -addr 127.0.0.1:9400 -limit 256 count 0 1000000
//	btquery -addr 127.0.0.1:9400 seek 500             # smallest key >= 500
//	btquery -addr 127.0.0.1:9400 lookup 12345         # primary keys with value 12345
//
// scan prints "key value" lines; count follows the same pages but prints
// only the total (and page count), which is the cheap way to size a
// range. lookup needs a server running with -index. Exit status is 0 on
// success (including an empty result), 1 on any error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"btreeperf/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9400", "btserved address")
		limit     = flag.Int("limit", 0, "page entry cap (0 = server default)")
		opTimeout = flag.Duration("op-timeout", 5*time.Second, "per-op deadline")
		quiet     = flag.Bool("q", false, "suppress per-entry output (scan behaves like count)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	c, err := server.DialTimeout(*addr, *opTimeout)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(*opTimeout)

	switch args[0] {
	case "scan", "count":
		if len(args) != 3 {
			usage()
		}
		lo, hi := parseKey(args[1]), parseKey(args[2])
		w := bufio.NewWriter(os.Stdout)
		keys, pages := 0, 0
		var token []byte
		for {
			page, next, err := c.Scan(lo, hi, *limit, token)
			if err != nil {
				w.Flush()
				fatal(err)
			}
			pages++
			keys += len(page)
			if args[0] == "scan" && !*quiet {
				for _, e := range page {
					fmt.Fprintf(w, "%d %d\n", e.Key, e.Val)
				}
			}
			if next == nil {
				break
			}
			token = next
		}
		w.Flush()
		fmt.Printf("%d keys in [%d, %d) over %d pages\n", keys, lo, hi, pages)
	case "seek":
		if len(args) != 2 {
			usage()
		}
		key, val, ok, err := c.SeekGE(parseKey(args[1]))
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Println("no key")
			return
		}
		fmt.Printf("%d %d\n", key, val)
	case "lookup":
		if len(args) != 2 {
			usage()
		}
		val, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fatal(fmt.Errorf("value %q: %w", args[1], err))
		}
		w := bufio.NewWriter(os.Stdout)
		n, pages := 0, 0
		var token []byte
		for {
			keys, next, err := c.Lookup(val, *limit, token)
			if err != nil {
				w.Flush()
				fatal(err)
			}
			pages++
			n += len(keys)
			if !*quiet {
				for _, k := range keys {
					fmt.Fprintf(w, "%d\n", k)
				}
			}
			if next == nil {
				break
			}
			token = next
		}
		w.Flush()
		fmt.Printf("%d keys with value %d over %d pages\n", n, val, pages)
	default:
		usage()
	}
}

func parseKey(s string) int64 {
	k, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fatal(fmt.Errorf("key %q: %w", s, err))
	}
	return k
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "btquery:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: btquery [flags] <command>
  scan <lo> <hi>    print "key value" for every key in [lo, hi)
  count <lo> <hi>   count keys in [lo, hi) without printing them
  seek <key>        print the smallest stored key >= key and its value
  lookup <value>    print the primary keys whose indexed value is value`)
	flag.PrintDefaults()
	os.Exit(2)
}
