package main

// Regression tests for tolerant-mode error accounting: when a connection
// dies mid-stream, every sent-but-unanswered request must be counted as
// lost exactly once, and a request whose Send failed must not be counted
// at all. The fake servers below answer a fixed number of requests and
// then kill the connection abruptly (RST via SO_LINGER 0), the same
// failure shape a kill -9 or chaos reset produces.

import (
	"bufio"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"btreeperf/internal/server"
	"btreeperf/internal/workload"
	"btreeperf/internal/xrand"
)

// rstServer accepts one connection, answers exactly answerN requests,
// then resets the connection. Returning 0 for answerN resets on the
// first read.
func rstServer(t *testing.T, answerN int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.SetLinger(0) // close sends RST: in-flight data is torn down
				}
				br := bufio.NewReader(conn)
				buf := make([]byte, server.MaxPayload)
				out := make([]byte, 0, 16)
				for i := 0; i < answerN; i++ {
					if _, err := server.ReadRequest(br, buf); err != nil {
						return
					}
					out = server.AppendResponse(out[:0], server.Response{Status: server.StatusOK})
					if _, err := conn.Write(out); err != nil {
						return
					}
				}
				// Drain whatever is queued without answering, briefly, so
				// the client's sends succeed before the reset.
				conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
				for {
					if _, err := server.ReadRequest(br, buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func testGen(t *testing.T) *workload.Generator {
	t.Helper()
	gen, err := workload.NewGenerator(workload.PaperMix, workload.NewKeyPool(), 1<<20, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestPumpAccountingOnConnLoss kills the connection after k answered
// requests and checks the books balance: recvd + lost == did. The
// send-before-stamp order makes the invariant structural: a stamp can
// only exist for a request Send accepted, so a failed Send can never
// leave a phantom stamp for the receiver to count as a lost in-flight
// op (the old stamp-first order relied on Send never failing between
// explicit Flushes — true for today's frame sizes, but one buffer-size
// or frame-format change away from double counting).
func TestPumpAccountingOnConnLoss(t *testing.T) {
	for _, answerN := range []int{0, 1, 7, 40} {
		var ctr counters
		var stop atomic.Bool
		addr := rstServer(t, answerN)
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		c := server.NewClient(conn)
		c.SetOpTimeout(2 * time.Second)

		samples := make([]int64, 0, 1024)
		seen := 0
		did, lost, pumpErr := pump(c, testGen(t), 16, 0, false, 0,
			xrand.New(2), &stop, &ctr, &samples, &seen)
		c.Close()

		if pumpErr == nil {
			t.Fatalf("answerN=%d: pump returned no error against a resetting server", answerN)
		}
		recvd := ctr.recvd.Load()
		if int64(did) != recvd+int64(lost) {
			t.Errorf("answerN=%d: sent %d, recvd %d, lost %d: %d ops unaccounted (double- or phantom-counted)",
				answerN, did, recvd, lost, int64(did)-recvd-int64(lost))
		}
		if lost < 0 || int64(lost) > int64(did) {
			t.Errorf("answerN=%d: lost %d of %d sent: phantom loss for an unsent request", answerN, lost, did)
		}
	}
}

// TestRunConnTolerantErrorBudget runs the full tolerant redial loop
// against a server that answers a few ops then resets, every cycle. The
// error budget must never exceed what was actually sent, and
// recvd + errs must equal sent exactly — the invariant the chaos
// harness's <1% client-error budget is measured against.
func TestRunConnTolerantErrorBudget(t *testing.T) {
	var ctr counters
	var stop atomic.Bool
	addr := rstServer(t, 25)
	time.AfterFunc(600*time.Millisecond, func() { stop.Store(true) })

	dial := func() (*server.Client, error) {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		c := server.NewClient(conn)
		c.SetOpTimeout(2 * time.Second)
		return c, nil
	}
	if _, err := runConn(dial, testGen(t), 16, 0, false, true, 0,
		xrand.New(3), &stop, &ctr); err != nil {
		t.Fatalf("tolerant runConn returned error: %v", err)
	}

	sent, recvd, errs := ctr.sent.Load(), ctr.recvd.Load(), ctr.errs.Load()
	if ctr.redials.Load() == 0 {
		t.Fatal("no redials: the fake server never reset the connection")
	}
	if recvd+errs != sent {
		t.Errorf("sent %d, recvd %d, errs %d: books off by %d (a lost op counted twice, or a phantom)",
			sent, recvd, errs, sent-recvd-errs)
	}
	if errs > sent {
		t.Errorf("errs %d > sent %d: error budget charged for unsent requests", errs, sent)
	}
}
