package main

// Acked-durability audit mode. `btload -audit FILE` drives a puts-only
// workload with unique keys and appends one "key value" line to FILE for
// every put the server ACKNOWLEDGED. The harness then kill -9s the
// server, restarts it (running recovery), and `btload -audit-verify
// FILE` replays the file as gets: every recorded key must be present
// with its recorded value, because an acknowledgment from a durable
// server is a promise the write survives a crash.
//
// Keys are disjoint across connections (key = keystart + seq*conns +
// connID) and across kill cycles (each cycle passes a fresh -keystart),
// so verification is exact: no same-key reordering across the server's
// worker pool can change the final value. Values are derived from the
// key (val = key * auditValMul), so the file itself carries enough to
// verify without trusting btload's memory.
//
// In audit mode a dead connection is the expected outcome — the server
// was kill -9ed mid-run — so btload flushes the audit file and exits 0.

import (
	"bufio"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/server"
)

const auditValMul = 0x9E3779B97F4A7C15

func auditVal(key int64) uint64 { return uint64(key) * auditValMul }

// auditLog serializes acked-write records to the audit file.
type auditLog struct {
	mu sync.Mutex
	bw *bufio.Writer
	f  *os.File
	n  int64
}

func openAuditLog(path string) (*auditLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &auditLog{f: f, bw: bufio.NewWriter(f)}, nil
}

func (a *auditLog) record(key int64, val uint64) {
	a.mu.Lock()
	fmt.Fprintf(a.bw, "%d %d\n", key, val)
	a.n++
	a.mu.Unlock()
}

func (a *auditLog) close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.bw.Flush(); err != nil {
		return err
	}
	return a.f.Close()
}

// runAudit drives conns pipelined put streams until duration elapses or
// the server goes away, recording every acked put. Exit status 0 covers
// both endings; only a local failure (cannot write the audit file) is an
// error.
func runAudit(dial func() (*server.Client, error), path string,
	conns, depth int, keystart int64, duration time.Duration) int {
	alog, err := openAuditLog(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btload:", err)
		return 1
	}

	var stop atomic.Bool
	time.AfterFunc(duration, func() { stop.Store(true) })
	var sent, acked, unacked atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(connID int) {
			defer wg.Done()
			a, u, s := auditConn(dial, alog, connID, conns, depth, keystart, &stop)
			acked.Add(a)
			unacked.Add(u)
			sent.Add(s)
		}(i)
	}
	wg.Wait()

	if err := alog.close(); err != nil {
		fmt.Fprintln(os.Stderr, "btload: audit file:", err)
		return 1
	}
	fmt.Printf("btload audit: %d puts sent, %d acked (recorded to %s), %d shed/unacked\n",
		sent.Load(), acked.Load(), path, unacked.Load())
	return 0
}

// auditConn runs one connection's put stream: the sender pipelines up to
// depth puts, the receiver matches in-order responses to their keys and
// records the acked ones. It ends at stop or on the first connection
// error (the kill).
func auditConn(dial func() (*server.Client, error), alog *auditLog,
	connID, conns, depth int, keystart int64, stop *atomic.Bool) (acked, unacked, sent int64) {
	// The server may be mid-restart or behind a faulty listener; give the
	// dial a few tries before giving up on this cycle.
	var c *server.Client
	var err error
	for try := 0; try < 20 && !stop.Load(); try++ {
		if c, err = dial(); err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if c == nil {
		return 0, 0, 0
	}
	defer c.Close()

	// The receiver owns the ack/unack tallies and hands them back over
	// done; on a Recv error it drains keys (which the sender closes once
	// its own Send/Flush fails) counting everything in flight as
	// unacknowledged — exactly the writes a kill is allowed to lose.
	keys := make(chan int64, depth)
	done := make(chan [2]int64, 1)
	go func() {
		var a, u int64
		for key := range keys {
			resp, err := c.Recv()
			if err != nil {
				u++
				for range keys {
					u++
				}
				done <- [2]int64{a, u}
				return
			}
			// StatusOK and StatusMiss both mean the put applied AND its
			// batch's fsync returned: a durable ack. Busy/Overload/Unavail
			// mean the server refused it — not a promise, not recorded.
			if resp.Status == server.StatusOK || resp.Status == server.StatusMiss {
				alog.record(key, auditVal(key))
				a++
			} else {
				u++
			}
		}
		done <- [2]int64{a, u}
	}()

	var seq int64
	for !stop.Load() {
		key := keystart + seq*int64(conns) + int64(connID)
		if len(keys) == cap(keys) {
			// Pipeline full: push buffered puts to the wire before
			// blocking, or the receiver would wait on responses to
			// requests still sitting in the client buffer.
			if err := c.Flush(); err != nil {
				break
			}
		}
		// Send before enqueueing the key: the receiver treats every entry
		// on keys as an in-flight put, so a key whose Send failed would be
		// tallied unacked (and inflate "puts sent") for a request that
		// never left the client.
		if err := c.Send(server.Request{Op: server.OpPut, Key: key, Val: auditVal(key)}); err != nil {
			break
		}
		keys <- key
		seq++
		if seq%64 == 0 {
			if err := c.Flush(); err != nil {
				break
			}
		}
	}
	c.Flush()
	close(keys)
	r := <-done
	return r[0], r[1], seq
}

// runVerify replays an audit file against a (recovered) server: every
// recorded key must be present with its recorded value. Exits non-zero
// on any lost or corrupted acked write — the harness's zero-loss budget.
func runVerify(dial func() (*server.Client, error), path string, conns, depth int) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btload:", err)
		return 1
	}
	defer f.Close()
	type rec struct {
		key int64
		val uint64
	}
	var recs []rec
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r rec
		if _, err := fmt.Sscanf(sc.Text(), "%d %d", &r.key, &r.val); err != nil {
			fmt.Fprintf(os.Stderr, "btload: bad audit line %q: %v\n", sc.Text(), err)
			return 1
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "btload:", err)
		return 1
	}

	var lost, wrong, checked atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	per := (len(recs) + conns - 1) / conns
	for i := 0; i < conns && i*per < len(recs); i++ {
		part := recs[i*per : min(len(recs), (i+1)*per)]
		wg.Add(1)
		go func(part []rec) {
			defer wg.Done()
			c, err := dial()
			if err != nil {
				fmt.Fprintln(os.Stderr, "btload:", err)
				failed.Store(true)
				return
			}
			defer c.Close()
			// Pipelined gets: send runs ahead of recv by at most depth.
			inFlight := 0
			next := 0
			recvOne := func(r rec) bool {
				resp, err := c.Recv()
				if err != nil {
					fmt.Fprintln(os.Stderr, "btload: verify recv:", err)
					failed.Store(true)
					return false
				}
				checked.Add(1)
				switch {
				case resp.Status != server.StatusOK:
					lost.Add(1)
				case resp.Val != r.val:
					wrong.Add(1)
				}
				return true
			}
			for _, r := range part {
				if inFlight == depth {
					if !recvOne(part[next]) {
						return
					}
					next++
					inFlight--
				}
				if err := c.Send(server.Request{Op: server.OpGet, Key: r.key}); err != nil {
					fmt.Fprintln(os.Stderr, "btload: verify send:", err)
					failed.Store(true)
					return
				}
				inFlight++
				if inFlight == depth {
					if err := c.Flush(); err != nil {
						fmt.Fprintln(os.Stderr, "btload: verify flush:", err)
						failed.Store(true)
						return
					}
				}
			}
			if err := c.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "btload: verify flush:", err)
				failed.Store(true)
				return
			}
			for ; next < len(part); next++ {
				if !recvOne(part[next]) {
					return
				}
			}
		}(part)
	}
	wg.Wait()

	fmt.Printf("btload audit-verify: %d acked writes checked, %d lost, %d corrupted\n",
		checked.Load(), lost.Load(), wrong.Load())
	if failed.Load() || checked.Load() != int64(len(recs)) {
		fmt.Fprintln(os.Stderr, "btload: verification incomplete")
		return 1
	}
	if lost.Load() > 0 || wrong.Load() > 0 {
		return 1
	}
	return 0
}
