// Replica mode: -replicas=addr,... splits the generated load across a
// replicated deployment the way a replication-aware application would.
// Mutations go to -addr (the leader); searches go to the follower
// assigned to the connection slot as bounded-staleness reads (OpGetSeq
// carrying the shared read floor), and scans go to the same follower as
// plain range reads. The floor is learned from the leader's acks: in
// replicated mode every put/del response is stamped with the shard's
// durable sequence, and the stamp raises a per-shard atomic floor shared
// by all connections — so a follower that has not yet applied a write
// this very load generator performed refuses the read (StatusLagging,
// counted per target, never retried and never answered stale) rather
// than serving the pre-write state.
package main

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"btreeperf/internal/server"
	"btreeperf/internal/workload"
	"btreeperf/internal/xrand"
)

// replTargets is the shared replica-mode state: the leader's shard
// count, the per-shard read floors, and per-target accounting.
type replTargets struct {
	nShards int
	floors  []atomic.Int64 // per shard: highest acked durable seq observed
	addrs   []string

	gets    []atomic.Int64 // per target: getseqs answered OK/Miss
	scans   []atomic.Int64 // per target: scan pages answered OK
	lagging []atomic.Int64 // per target: StatusLagging refusals
	errsT   []atomic.Int64 // per target: transport/status failures
}

// newReplTargets probes the leader for its shard count (the Seqs op
// returns one entry per shard) and sizes the shared state.
func newReplTargets(dialTo func(addr string) (*server.Client, error), leader, spec string) (*replTargets, error) {
	addrs := strings.Split(spec, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
		if addrs[i] == "" {
			return nil, fmt.Errorf("empty address in -replicas %q", spec)
		}
	}
	c, err := dialTo(leader)
	if err != nil {
		return nil, fmt.Errorf("leader %s: %w", leader, err)
	}
	defer c.Close()
	seqs, err := c.Seqs()
	if err != nil {
		return nil, fmt.Errorf("leader %s seqs: %w", leader, err)
	}
	return &replTargets{
		nShards: len(seqs),
		floors:  make([]atomic.Int64, len(seqs)),
		addrs:   addrs,
		gets:    make([]atomic.Int64, len(addrs)),
		scans:   make([]atomic.Int64, len(addrs)),
		lagging: make([]atomic.Int64, len(addrs)),
		errsT:   make([]atomic.Int64, len(addrs)),
	}, nil
}

// observe raises a shard's read floor to an acked durable sequence.
func (rt *replTargets) observe(key int64, seq int64) {
	f := &rt.floors[server.ShardIndex(key, rt.nShards)]
	for {
		cur := f.Load()
		if seq <= cur || f.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// report prints the per-target split after the run.
func (rt *replTargets) report(elapsed time.Duration) {
	for i, addr := range rt.addrs {
		g, sc := rt.gets[i].Load(), rt.scans[i].Load()
		lag, e := rt.lagging[i].Load(), rt.errsT[i].Load()
		reads := g + sc + lag
		lagPct := 0.0
		if reads > 0 {
			lagPct = 100 * float64(lag) / float64(reads)
		}
		fmt.Printf("replica %s: %d gets, %d scan pages (%.0f reads/s), %d lagging refusals (%.2f%%), %d errors\n",
			addr, g, sc, float64(g+sc)/elapsed.Seconds(), lag, lagPct, e)
	}
	floors := make([]int64, rt.nShards)
	for i := range floors {
		floors[i] = rt.floors[i].Load()
	}
	fmt.Printf("read floors at exit (per shard): %v\n", floors)
}

// replStamp matches one pipelined request to its response.
type replStamp struct {
	t   int64 // scheduled send time, ns
	op  workload.Op
	key int64
}

// runConnRepl drives one replica-mode connection slot: a leader
// connection carrying the mutations and a follower connection (slot
// picks addrs[i%len]) carrying the reads, each with its own pipelined
// receiver. Replica mode is strict (no -chaos tolerance): any connection
// error ends the slot.
func runConnRepl(dialTo func(addr string) (*server.Client, error), rt *replTargets,
	slot int, leaderAddr string, gen *workload.Generator,
	depth, quota int, quotaMode bool, rate float64, rsv *xrand.Source,
	stop *atomic.Bool, ctr *counters,
) ([]int64, error) {
	target := slot % len(rt.addrs)
	lc, err := dialTo(leaderAddr)
	if err != nil {
		return nil, fmt.Errorf("leader %s: %w", leaderAddr, err)
	}
	defer lc.Close()
	fc, err := dialTo(rt.addrs[target])
	if err != nil {
		return nil, fmt.Errorf("replica %s: %w", rt.addrs[target], err)
	}
	defer fc.Close()

	type recvState struct {
		samples []int64
		seen    int
		err     error
	}

	// Leader receiver: mutations only. An acked response carries the
	// shard's durable seq — fold it into the shared read floor.
	lstamps := make(chan replStamp, depth)
	ldone := make(chan recvState, 1)
	go func() {
		var st recvState
		for s := range lstamps {
			resp, err := lc.Recv()
			if err != nil {
				st.err = err
				for range lstamps {
				}
				break
			}
			lat := time.Now().UnixNano() - s.t
			ctr.latSum.Add(lat)
			ctr.recvd.Add(1)
			switch resp.Status {
			case server.StatusBusy, server.StatusOverload:
				ctr.shed.Add(1)
			case server.StatusOK, server.StatusMiss:
				if resp.HasVal {
					rt.observe(s.key, int64(resp.Val))
				}
			}
			st.seen++
			if len(st.samples) < maxSamplesPerConn {
				st.samples = append(st.samples, lat)
			}
		}
		ldone <- st
	}()

	// Follower receiver: getseqs (point-shaped) and scans (page-shaped).
	fstamps := make(chan replStamp, depth)
	fdone := make(chan recvState, 1)
	go func() {
		var st recvState
		for s := range fstamps {
			var resp server.Response
			var err error
			if s.op == workload.Scan {
				resp, err = fc.RecvPage()
			} else {
				resp, err = fc.Recv()
			}
			if err != nil {
				st.err = err
				for range fstamps {
				}
				break
			}
			lat := time.Now().UnixNano() - s.t
			ctr.latSum.Add(lat)
			ctr.recvd.Add(1)
			switch resp.Status {
			case server.StatusBusy, server.StatusOverload:
				ctr.shed.Add(1)
			case server.StatusLagging:
				// The follower refused rather than serve state older than
				// our own acked writes. Counted, not retried: the refusal
				// rate IS the measurement.
				rt.lagging[target].Add(1)
			case server.StatusOK:
				switch s.op {
				case workload.Search:
					ctr.hits.Add(1)
					rt.gets[target].Add(1)
				case workload.Scan:
					ctr.scanKeys.Add(int64(len(resp.Entries)))
					rt.scans[target].Add(1)
				}
			case server.StatusMiss:
				rt.gets[target].Add(1)
			default:
				rt.errsT[target].Add(1)
			}
			st.seen++
			if len(st.samples) < maxSamplesPerConn {
				st.samples = append(st.samples, lat)
			}
		}
		fdone <- st
	}()

	// Sender: route by op kind, pace the combined stream when open-loop.
	var sendErr error
	did := 0
	next := time.Now().UnixNano()
	for !stop.Load() && (!quotaMode || did < quota) {
		op, key := gen.Next()
		var req server.Request
		c, stamps := lc, lstamps
		switch op {
		case workload.Search:
			floor := rt.floors[server.ShardIndex(key, rt.nShards)].Load()
			req = server.Request{Op: server.OpGetSeq, Key: key, MinSeq: floor}
			c, stamps = fc, fstamps
			ctr.searches.Add(1)
		case workload.Scan:
			hi := key + scanWidth
			if hi < key {
				hi = int64(^uint64(0) >> 1)
			}
			req = server.Request{Op: server.OpScan, Key: key, Hi: hi, Limit: scanPageLimit}
			c, stamps = fc, fstamps
			ctr.scans.Add(1)
		case workload.Insert:
			req = server.Request{Op: server.OpPut, Key: key, Val: uint64(key)}
			ctr.inserts.Add(1)
		default:
			req = server.Request{Op: server.OpDel, Key: key}
			ctr.deletes.Add(1)
		}
		stampNs := time.Now().UnixNano()
		if rate > 0 {
			next += int64(rsv.ExpRate(rate) * 1e9)
			if d := next - stampNs; d > 0 {
				if sendErr = lc.Flush(); sendErr != nil {
					break
				}
				if sendErr = fc.Flush(); sendErr != nil {
					break
				}
				time.Sleep(time.Duration(d))
			}
			stampNs = next
		}
		if len(stamps) == cap(stamps) {
			if sendErr = c.Flush(); sendErr != nil {
				break
			}
		}
		if sendErr = c.Send(req); sendErr != nil {
			break
		}
		stamps <- replStamp{t: stampNs, op: op, key: key}
		did++
		if did%64 == 0 {
			if sendErr = lc.Flush(); sendErr != nil {
				break
			}
			if sendErr = fc.Flush(); sendErr != nil {
				break
			}
		}
	}
	lc.Flush()
	fc.Flush()
	close(lstamps)
	close(fstamps)
	lst, fst := <-ldone, <-fdone
	ctr.sent.Add(int64(did))
	if sendErr != nil {
		return nil, sendErr
	}
	if lst.err != nil {
		return nil, fmt.Errorf("leader recv: %w", lst.err)
	}
	if fst.err != nil {
		return nil, fmt.Errorf("replica %s recv: %w", rt.addrs[target], fst.err)
	}
	return append(lst.samples, fst.samples...), nil
}

// setupReplicas validates the replica-mode flag combination and builds
// the shared state; exits on misuse.
func setupReplicas(dialTo func(addr string) (*server.Client, error),
	leader, spec, chaos, audit, auditVerify string,
) *replTargets {
	if spec == "" {
		return nil
	}
	if chaos != "" || audit != "" || auditVerify != "" {
		fmt.Fprintln(os.Stderr, "btload: -replicas is incompatible with -chaos and -audit modes")
		os.Exit(2)
	}
	rt, err := newReplTargets(dialTo, leader, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btload:", err)
		os.Exit(2)
	}
	return rt
}
