// Command btload is a closed-loop load generator for btserved: n
// connections each keep up to -depth requests pipelined, drawing
// operations from the paper's search/insert/delete mix via independent
// deterministic workload generators (workload.Generator.Split), and
// report throughput plus latency quantiles.
//
//	btload -addr 127.0.0.1:9400 -conns 4 -depth 32 -duration 5s
//	btload -addr 127.0.0.1:9400 -n 1000000 -qs .3 -qi .5 -qd .2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/server"
	"btreeperf/internal/workload"
	"btreeperf/internal/xrand"
)

const maxSamplesPerConn = 1 << 21 // reservoir bound: 2Mi samples ≈ 16 MB

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9400", "btserved address")
		conns    = flag.Int("conns", 4, "concurrent connections")
		depth    = flag.Int("depth", 32, "pipelined requests per connection (closed loop)")
		duration = flag.Duration("duration", 5*time.Second, "run length (ignored when -n > 0)")
		nOps     = flag.Int("n", 0, "total operations (0 = run for -duration)")
		qs       = flag.Float64("qs", workload.PaperMix.QS, "search fraction")
		qi       = flag.Float64("qi", workload.PaperMix.QI, "insert fraction")
		qd       = flag.Float64("qd", workload.PaperMix.QD, "delete fraction")
		keySpace = flag.Int64("keyspace", 1<<31, "insert keys drawn uniformly from [0, keyspace)")
		seed     = flag.Uint64("seed", 1, "workload seed (fixed seed = reproducible op streams)")
	)
	flag.Parse()
	if *conns < 1 || *depth < 1 {
		fmt.Fprintln(os.Stderr, "btload: conns and depth must be >= 1")
		os.Exit(2)
	}

	mix := workload.Mix{QS: *qs, QI: *qi, QD: *qd}
	master, err := workload.NewGenerator(mix, workload.NewKeyPool(), *keySpace, xrand.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "btload:", err)
		os.Exit(2)
	}
	gens := master.Split(*conns)

	var (
		stop       atomic.Bool
		sent       atomic.Int64
		recvd      atomic.Int64
		latSum     atomic.Int64
		hits       atomic.Int64
		searches   atomic.Int64
		inserts    atomic.Int64
		deletes    atomic.Int64
		sampleMu   sync.Mutex
		allSamples [][]int64
	)
	quota := make([]int, *conns)
	if *nOps > 0 {
		per, extra := *nOps / *conns, *nOps%*conns
		for i := range quota {
			quota[i] = per
			if i < extra {
				quota[i]++
			}
		}
	}

	start := time.Now()
	if *nOps <= 0 {
		time.AfterFunc(*duration, func() { stop.Store(true) })
	}

	var wg sync.WaitGroup
	errs := make(chan error, *conns)
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples, err := runConn(*addr, gens[i], *depth, quota[i], *nOps > 0,
				xrand.New(*seed^uint64(i)*0x9e3779b97f4a7c15),
				&stop, &sent, &recvd, &latSum, &hits, &searches, &inserts, &deletes)
			if err != nil {
				errs <- fmt.Errorf("conn %d: %w", i, err)
				stop.Store(true)
				return
			}
			sampleMu.Lock()
			allSamples = append(allSamples, samples)
			sampleMu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		fmt.Fprintln(os.Stderr, "btload:", err)
		os.Exit(1)
	default:
	}

	n := recvd.Load()
	fmt.Printf("btload: %d conns × depth %d against %s, mix s/i/d = %.2f/%.2f/%.2f, seed %d\n",
		*conns, *depth, *addr, *qs, *qi, *qd, *seed)
	fmt.Printf("%d ops in %v: %.0f ops/s\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	if n > 0 {
		var lats []int64
		for _, s := range allSamples {
			lats = append(lats, s...)
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		q := func(p float64) float64 {
			if len(lats) == 0 {
				return 0
			}
			i := int(p * float64(len(lats)-1))
			return float64(lats[i]) / 1e3
		}
		fmt.Printf("latency µs: mean %.1f p50 %.1f p95 %.1f p99 %.1f max %.1f\n",
			float64(latSum.Load())/float64(n)/1e3, q(0.50), q(0.95), q(0.99), q(1))
		sr := searches.Load()
		hitPct := 0.0
		if sr > 0 {
			hitPct = 100 * float64(hits.Load()) / float64(sr)
		}
		fmt.Printf("ops: %d search (%.0f%% hit), %d insert, %d delete\n",
			sr, hitPct, inserts.Load(), deletes.Load())
	}
}

// runConn drives one connection: this goroutine generates and sends, a
// second receives; the stamps channel both matches responses to send
// times (responses arrive in order) and bounds the pipeline at depth.
func runConn(addr string, gen *workload.Generator, depth, quota int, quotaMode bool,
	rsv *xrand.Source, stop *atomic.Bool,
	sent, recvd, latSum, hits, searches, inserts, deletes *atomic.Int64,
) ([]int64, error) {
	c, err := server.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	stamps := make(chan [2]int64, depth) // (sendTime, opKind)
	samples := make([]int64, 0, 1<<16)
	recvErr := make(chan error, 1)
	go func() {
		seen := 0
		for st := range stamps {
			resp, err := c.Recv()
			if err != nil {
				recvErr <- err
				// Unblock the sender, which may be parked on stamps.
				for range stamps {
				}
				return
			}
			lat := time.Now().UnixNano() - st[0]
			latSum.Add(lat)
			recvd.Add(1)
			if workload.Op(st[1]) == workload.Search && resp.Status == server.StatusOK {
				hits.Add(1)
			}
			seen++
			if len(samples) < maxSamplesPerConn {
				samples = append(samples, lat)
			} else if j := rsv.IntN(seen); j < maxSamplesPerConn {
				samples[j] = lat
			}
		}
		recvErr <- nil
	}()

	sentHere := 0
	for !stop.Load() && (!quotaMode || sentHere < quota) {
		op, key := gen.Next()
		var req server.Request
		switch op {
		case workload.Search:
			req = server.Request{Op: server.OpGet, Key: key}
			searches.Add(1)
		case workload.Insert:
			req = server.Request{Op: server.OpPut, Key: key, Val: uint64(key)}
			inserts.Add(1)
		default:
			req = server.Request{Op: server.OpDel, Key: key}
			deletes.Add(1)
		}
		st := [2]int64{time.Now().UnixNano(), int64(op)}
		if len(stamps) == cap(stamps) {
			// Pipeline full: push buffered requests to the wire before
			// blocking on a free slot, or the receiver would wait for
			// responses to requests still sitting in the client buffer.
			if err := c.Flush(); err != nil {
				break
			}
		}
		stamps <- st
		if err := c.Send(req); err != nil {
			break
		}
		sentHere++
		if sentHere%64 == 0 {
			if err := c.Flush(); err != nil {
				break
			}
		}
	}
	c.Flush()
	close(stamps)
	err = <-recvErr
	sent.Add(int64(sentHere))
	return samples, err
}
