// Command btload is a load generator for btserved: n connections each
// keep up to -depth requests pipelined, drawing operations from the
// paper's search/insert/delete mix — optionally extended with a range-
// scan share (-qr, or a -scenario preset like scan-heavy) — via
// independent deterministic workload generators
// (workload.Generator.Split), and report throughput plus latency
// quantiles. A drawn scan requests one page of [k, k+scan-span) at a
// live key k, pipelined like any other op.
//
//	btload -addr 127.0.0.1:9400 -conns 4 -depth 32 -duration 5s
//	btload -addr 127.0.0.1:9400 -n 1000000 -qs .3 -qi .5 -qd .2
//	btload -addr 127.0.0.1:9400 -scenario scan-mixed -scan-limit 128
//	btload -addr 127.0.0.1:9400 -scenario read-heavy -zipf 1.1
//
// -zipf s skews key choice zipfian with exponent s (0 = uniform, the
// paper's regime): searches, deletes, and scans concentrate on a hot
// set of live keys and inserts on low keys, concentrating writer
// contention — the regime where olc's latch-free reads diverge most
// from link-type's queued R locks.
//
// By default the loop is closed: each connection sends as fast as its
// pipeline window allows, so offered load adapts to the server. With
// -rate λ the loop is open: arrivals form a Poisson process at λ ops/s
// total (exponential interarrival gaps split evenly across connections,
// matching the paper's arrival model), latencies are measured from each
// request's scheduled arrival time (so queueing delay from a lagging
// sender — coordinated omission — is charged to the server, not hidden),
// and the exit report prints the applied arrival rate next to the target
// so saturation is visible:
//
//	btload -addr 127.0.0.1:9400 -conns 4 -rate 200000 -duration 10s
//
// With -chaos, each connection is wrapped in the internal/faults
// injector (client-side chaos: latency, stalls, resets, truncated
// writes, dropped dials) and the loop turns tolerant: connection
// errors are absorbed by redialing, in-flight requests lost to a dead
// connection are counted as errors, and Busy/Overload responses from a
// shedding server are counted separately. The exit report then
// includes error and shed counts and rates:
//
//	btload -addr 127.0.0.1:9400 -chaos 'preset=0.002,pdrop=0.05,seed=3'
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"btreeperf/internal/faults"
	"btreeperf/internal/server"
	"btreeperf/internal/workload"
	"btreeperf/internal/xrand"
)

const maxSamplesPerConn = 1 << 21 // reservoir bound: 2Mi samples ≈ 16 MB

// Scan-shape parameters, set once from flags before any connection
// starts (drawn scans request one page of [k, k+scanWidth)).
var (
	scanWidth     int64
	scanPageLimit int
)

// counters aggregates load statistics across connections.
type counters struct {
	sent     atomic.Int64
	recvd    atomic.Int64
	latSum   atomic.Int64
	hits     atomic.Int64
	searches atomic.Int64
	inserts  atomic.Int64
	deletes  atomic.Int64
	scans    atomic.Int64 // scan pages requested (one page per drawn scan op)
	scanKeys atomic.Int64 // entries returned on those pages
	shed     atomic.Int64 // Busy/Overload responses (server self-defense)
	errs     atomic.Int64 // requests lost to connection failures
	redials  atomic.Int64 // reconnects in tolerant (-chaos) mode
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9400", "btserved address")
		conns     = flag.Int("conns", 4, "concurrent connections")
		depth     = flag.Int("depth", 32, "pipelined requests per connection (closed loop)")
		duration  = flag.Duration("duration", 5*time.Second, "run length (ignored when -n > 0)")
		nOps      = flag.Int("n", 0, "total operations (0 = run for -duration)")
		rate      = flag.Float64("rate", 0, "open-loop Poisson arrival rate, total ops/s across connections (0 = closed loop)")
		qs        = flag.Float64("qs", workload.PaperMix.QS, "search fraction")
		qi        = flag.Float64("qi", workload.PaperMix.QI, "insert fraction")
		qd        = flag.Float64("qd", workload.PaperMix.QD, "delete fraction")
		qr        = flag.Float64("qr", 0, "range-scan fraction (scans draw one page of [k, k+scan-span) at a live key k)")
		scenario  = flag.String("scenario", "", "named mix preset (paper, point, read-heavy, insert-heavy, scan-heavy, scan-mixed); overrides -qs/-qi/-qd/-qr")
		scanSpan  = flag.Int64("scan-span", 0, "scan range width in key space (0 = keyspace/512)")
		scanLimit = flag.Int("scan-limit", 0, "scan page entry cap (0 = server default)")
		keySpace  = flag.Int64("keyspace", 1<<31, "insert keys drawn uniformly from [0, keyspace)")
		zipf      = flag.Float64("zipf", 0, "zipfian key-skew exponent s: accesses concentrate on a hot key set (0 = uniform)")
		seed      = flag.Uint64("seed", 1, "workload seed (fixed seed = reproducible op streams)")
		chaosSpec = flag.String("chaos", "", "client-side fault spec (tolerant mode), e.g. 'preset=0.002,pdrop=0.05,seed=3'")
		opTimeout = flag.Duration("op-timeout", 0, "per-op deadline on each connection (0 = none; -chaos and -audit default to 5s)")

		replicas = flag.String("replicas", "", "comma-separated follower addresses: reads (gets as bounded-staleness getseq, scans) go to followers, mutations to -addr (the leader); see replicas.go")

		audit       = flag.String("audit", "", "acked-durability audit mode: record every acknowledged put to this file (see audit.go)")
		auditVerify = flag.String("audit-verify", "", "verify a recorded audit file against a recovered server; non-zero exit on any lost acked write")
		keystart    = flag.Int64("keystart", 0, "first key of the audit key range (give each kill cycle a disjoint range)")
	)
	flag.Parse()
	if *conns < 1 || *depth < 1 {
		fmt.Fprintln(os.Stderr, "btload: conns and depth must be >= 1")
		os.Exit(2)
	}
	if *rate < 0 {
		fmt.Fprintln(os.Stderr, "btload: rate must be >= 0")
		os.Exit(2)
	}
	perConnRate := *rate / float64(*conns)

	var inj *faults.Injector
	if *chaosSpec != "" {
		fc, err := faults.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btload:", err)
			os.Exit(2)
		}
		inj = faults.New(fc)
		if *opTimeout == 0 {
			*opTimeout = 5 * time.Second // a stalled chaos conn must not hang the run
		}
	}

	mix := workload.Mix{QS: *qs, QI: *qi, QD: *qd, QR: *qr}
	if *scenario != "" {
		m, err := workload.Scenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btload:", err)
			os.Exit(2)
		}
		mix = m
		*qs, *qi, *qd, *qr = m.QS, m.QI, m.QD, m.QR
	}
	if *scanSpan <= 0 {
		*scanSpan = *keySpace / 512
		if *scanSpan < 1 {
			*scanSpan = 1
		}
	}
	scanWidth, scanPageLimit = *scanSpan, *scanLimit
	master, err := workload.NewGenerator(mix, workload.NewKeyPool(), *keySpace, xrand.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "btload:", err)
		os.Exit(2)
	}
	if *zipf < 0 {
		fmt.Fprintln(os.Stderr, "btload: -zipf must be >= 0")
		os.Exit(2)
	}
	master.SetSkew(*zipf)
	gens := master.Split(*conns)

	var (
		stop       atomic.Bool
		ctr        counters
		sampleMu   sync.Mutex
		allSamples [][]int64
	)
	quota := make([]int, *conns)
	if *nOps > 0 {
		per, extra := *nOps / *conns, *nOps%*conns
		for i := range quota {
			quota[i] = per
			if i < extra {
				quota[i]++
			}
		}
	}

	dialTo := func(a string) (*server.Client, error) {
		conn, err := net.DialTimeout("tcp", a, 5*time.Second)
		if err != nil {
			return nil, err
		}
		if inj != nil {
			if conn = inj.Conn(conn); conn == nil {
				return nil, fmt.Errorf("chaos: connection dropped at dial")
			}
		}
		c := server.NewClient(conn)
		c.SetOpTimeout(*opTimeout)
		return c, nil
	}
	dial := func() (*server.Client, error) { return dialTo(*addr) }

	rt := setupReplicas(dialTo, *addr, *replicas, *chaosSpec, *audit, *auditVerify)

	if *audit != "" || *auditVerify != "" {
		if *opTimeout == 0 {
			// A Recv against a kill -9ed server whose conn never RSTs must
			// not hang the audit run.
			*opTimeout = 5 * time.Second
		}
		if *audit != "" {
			os.Exit(runAudit(dial, *audit, *conns, *depth, *keystart, *duration))
		}
		os.Exit(runVerify(dial, *auditVerify, *conns, *depth))
	}

	start := time.Now()
	if *nOps <= 0 {
		time.AfterFunc(*duration, func() { stop.Store(true) })
	}

	var wg sync.WaitGroup
	errs := make(chan error, *conns)
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var samples []int64
			var err error
			if rt != nil {
				samples, err = runConnRepl(dialTo, rt, i, *addr, gens[i], *depth, quota[i],
					*nOps > 0, perConnRate, xrand.New(*seed^uint64(i)*0x9e3779b97f4a7c15), &stop, &ctr)
			} else {
				samples, err = runConn(dial, gens[i], *depth, quota[i], *nOps > 0, inj != nil,
					perConnRate, xrand.New(*seed^uint64(i)*0x9e3779b97f4a7c15), &stop, &ctr)
			}
			if err != nil {
				errs <- fmt.Errorf("conn %d: %w", i, err)
				stop.Store(true)
				return
			}
			sampleMu.Lock()
			allSamples = append(allSamples, samples)
			sampleMu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		fmt.Fprintln(os.Stderr, "btload:", err)
		os.Exit(1)
	default:
	}

	n := ctr.recvd.Load()
	loop := "closed loop"
	if *rate > 0 {
		loop = fmt.Sprintf("open loop λ=%.0f/s", *rate)
	}
	skewNote := ""
	if *zipf > 0 {
		skewNote = fmt.Sprintf(", zipf s=%.2f", *zipf)
	}
	fmt.Printf("btload: %d conns × depth %d against %s (%s), mix s/i/d/r = %.2f/%.2f/%.2f/%.2f, seed %d%s\n",
		*conns, *depth, *addr, loop, *qs, *qi, *qd, *qr, *seed, skewNote)
	fmt.Printf("%d ops in %v: %.0f ops/s\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	if *rate > 0 {
		applied := float64(ctr.sent.Load()) / elapsed.Seconds()
		fmt.Printf("arrivals: target %.0f/s, applied %.0f/s (%.1f%%)\n",
			*rate, applied, 100*applied/(*rate))
	}
	if n > 0 {
		var lats []int64
		for _, s := range allSamples {
			lats = append(lats, s...)
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		q := func(p float64) float64 {
			if len(lats) == 0 {
				return 0
			}
			i := int(p * float64(len(lats)-1))
			return float64(lats[i]) / 1e3
		}
		fmt.Printf("latency µs: mean %.1f p50 %.1f p95 %.1f p99 %.1f max %.1f\n",
			float64(ctr.latSum.Load())/float64(n)/1e3, q(0.50), q(0.95), q(0.99), q(1))
		sr := ctr.searches.Load()
		hitPct := 0.0
		if sr > 0 {
			hitPct = 100 * float64(ctr.hits.Load()) / float64(sr)
		}
		fmt.Printf("ops: %d search (%.0f%% hit), %d insert, %d delete\n",
			sr, hitPct, ctr.inserts.Load(), ctr.deletes.Load())
		if sc := ctr.scans.Load(); sc > 0 {
			sk := ctr.scanKeys.Load()
			fmt.Printf("scans: %d pages (span %d, limit %d), %d keys returned, %.1f keys/page, %.0f keys/s\n",
				sc, scanWidth, scanPageLimit, sk, float64(sk)/float64(sc), float64(sk)/elapsed.Seconds())
		}
	}
	if rt != nil {
		rt.report(elapsed)
	}
	if shed := ctr.shed.Load(); shed > 0 || inj != nil {
		sentN := ctr.sent.Load()
		rate := func(c int64) float64 {
			if sentN == 0 {
				return 0
			}
			return 100 * float64(c) / float64(sentN)
		}
		fmt.Printf("shed: %d (%.2f%% of %d sent) — Busy/Overload from server self-defense\n",
			shed, rate(shed), sentN)
		if inj != nil {
			e := ctr.errs.Load()
			fmt.Printf("errors: %d (%.2f%% of sent), reconnects: %d\n", e, rate(e), ctr.redials.Load())
			fmt.Printf("chaos injected: %s\n", inj.Stats())
		}
	}
}

// runConn drives one connection slot: this goroutine generates and
// sends, a second receives; the stamps channel both matches responses
// to send times (responses arrive in order) and bounds the pipeline at
// depth. In tolerant mode a connection failure is absorbed: in-flight
// requests are counted as errors, the connection is redialed with
// backoff, and the loop continues until stop/quota.
func runConn(dial func() (*server.Client, error), gen *workload.Generator,
	depth, quota int, quotaMode, tolerant bool,
	rate float64, rsv *xrand.Source, stop *atomic.Bool, ctr *counters,
) ([]int64, error) {
	samples := make([]int64, 0, 1<<16)
	seen := 0
	sentHere := 0
	for !stop.Load() && (!quotaMode || sentHere < quota) {
		c, err := dial()
		if err != nil {
			if !tolerant {
				return samples, err
			}
			ctr.redials.Add(1)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		did, lost, err := pump(c, gen, depth, quota-sentHere, quotaMode,
			rate, rsv, stop, ctr, &samples, &seen)
		c.Close()
		sentHere += did
		if err != nil {
			if !tolerant {
				return samples, err
			}
			// Requests that were on the wire when the conn died never
			// got answers: that is the error budget being spent.
			ctr.errs.Add(int64(lost))
			ctr.redials.Add(1)
			time.Sleep(5 * time.Millisecond)
		}
	}
	ctr.sent.Add(int64(sentHere))
	return samples, nil
}

// pump runs one connection until stop, quota, or a connection error.
// It returns the number of requests sent and how many of those were
// still unanswered when it stopped.
//
// With rate > 0 the loop is open: sends are paced to a Poisson schedule
// at that rate, the schedule keeps advancing even when the sender lags
// (arrivals are never silently dropped or deferred), and each request is
// stamped with its scheduled arrival time so measured latency includes
// any delay between scheduled and actual send.
func pump(c *server.Client, gen *workload.Generator, depth, quota int, quotaMode bool,
	rate float64, rsv *xrand.Source, stop *atomic.Bool, ctr *counters,
	samples *[]int64, seen *int,
) (did, lost int, err error) {
	type recvResult struct {
		err  error
		lost int // in-flight requests that never got answers
	}
	stamps := make(chan [2]int64, depth) // (sendTime, opKind)
	recvDone := make(chan recvResult, 1)
	go func() {
		for st := range stamps {
			// Responses are untagged and in order: the stamp's op kind
			// says whether this response is page-shaped.
			var resp server.Response
			var err error
			if workload.Op(st[1]) == workload.Scan {
				resp, err = c.RecvPage()
			} else {
				resp, err = c.Recv()
			}
			if err != nil {
				// Unblock the sender, which may be parked on stamps,
				// counting the in-flight requests that lost answers.
				// The sender only stops once its own Send/Flush fails
				// (or stop/quota), so draining to close cannot hang.
				n := 1
				for range stamps {
					n++
				}
				recvDone <- recvResult{err: err, lost: n}
				return
			}
			lat := time.Now().UnixNano() - st[0]
			ctr.latSum.Add(lat)
			ctr.recvd.Add(1)
			switch resp.Status {
			case server.StatusBusy, server.StatusOverload:
				ctr.shed.Add(1)
			case server.StatusOK:
				switch workload.Op(st[1]) {
				case workload.Search:
					ctr.hits.Add(1)
				case workload.Scan:
					ctr.scanKeys.Add(int64(len(resp.Entries)))
				}
			}
			*seen++
			if len(*samples) < maxSamplesPerConn {
				*samples = append(*samples, lat)
			} else if j := rsv.IntN(*seen); j < maxSamplesPerConn {
				(*samples)[j] = lat
			}
		}
		recvDone <- recvResult{}
	}()

	next := time.Now().UnixNano() // open-loop arrival schedule cursor
	for !stop.Load() && (!quotaMode || did < quota) {
		op, key := gen.Next()
		var req server.Request
		switch op {
		case workload.Search:
			req = server.Request{Op: server.OpGet, Key: key}
			ctr.searches.Add(1)
		case workload.Insert:
			req = server.Request{Op: server.OpPut, Key: key, Val: uint64(key)}
			ctr.inserts.Add(1)
		case workload.Scan:
			hi := key + scanWidth
			if hi < key {
				hi = int64(^uint64(0) >> 1) // clamp at +inf on overflow
			}
			req = server.Request{Op: server.OpScan, Key: key, Hi: hi, Limit: scanPageLimit}
			ctr.scans.Add(1)
		default:
			req = server.Request{Op: server.OpDel, Key: key}
			ctr.deletes.Add(1)
		}
		stampNs := time.Now().UnixNano()
		if rate > 0 {
			next += int64(rsv.ExpRate(rate) * 1e9)
			if d := next - stampNs; d > 0 {
				// Push buffered requests to the wire before parking: a
				// paced gap must not leave arrivals sitting in the client
				// buffer waiting for the every-64 flush.
				if err := c.Flush(); err != nil {
					break
				}
				time.Sleep(time.Duration(d))
			}
			stampNs = next // latency from scheduled, not actual, send
		}
		st := [2]int64{stampNs, int64(op)}
		if len(stamps) == cap(stamps) {
			// Pipeline full: push buffered requests to the wire before
			// blocking on a free slot, or the receiver would wait for
			// responses to requests still sitting in the client buffer.
			if err := c.Flush(); err != nil {
				break
			}
		}
		// Send before stamping: a stamp must only ever exist for a request
		// that actually reached the wire path, or a failed Send would
		// leave a phantom stamp for the receiver to count as a lost
		// in-flight request — an op charged to the error budget (and to
		// lost+recvd accounting) that was never sent at all.
		if err := c.Send(req); err != nil {
			break
		}
		stamps <- st
		did++
		if did%64 == 0 {
			if err := c.Flush(); err != nil {
				break
			}
		}
	}
	c.Flush()
	close(stamps)
	res := <-recvDone
	return did, res.lost, res.err
}
