// Command btstore operates the disk-backed concurrent B⁺-tree: a small
// key/value store driven by the Lehman–Yao protocol with an LRU buffer
// pool and crash recovery.
//
//	btstore -db index.db put 42 100
//	btstore -db index.db get 42
//	btstore -db index.db del 42
//	btstore -db index.db scan 0 100
//	btstore -db index.db stat
//	btstore -db index.db bench -n 100000 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"btreeperf"
	"btreeperf/internal/xrand"
)

func main() {
	var (
		db      = flag.String("db", "btstore.db", "database file")
		cap     = flag.Int("cap", 128, "node capacity (items per page)")
		pool    = flag.Int("pool", 1024, "buffer pool size in nodes")
		durable = flag.Bool("durable", true, "enable journal + oplog crash recovery")
		syncOps = flag.Bool("syncops", false, "fsync the oplog on every write")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	tree, err := btreeperf.OpenDiskTree(*db, btreeperf.DiskTreeOptions{
		Cap: *cap, CacheNodes: *pool, Durable: *durable, SyncOps: *syncOps,
	})
	check(err)
	defer func() { check(tree.Close()) }()
	if n := tree.Recovered(); n > 0 {
		fmt.Fprintf(os.Stderr, "btstore: recovered %d operations from the oplog\n", n)
	}

	switch args[0] {
	case "put":
		need(args, 3)
		key := parseKey(args[1])
		val, err := strconv.ParseUint(args[2], 10, 64)
		check(err)
		fresh, err := tree.Insert(key, val)
		check(err)
		if fresh {
			fmt.Println("inserted")
		} else {
			fmt.Println("replaced")
		}
	case "get":
		need(args, 2)
		v, ok, err := tree.Search(parseKey(args[1]))
		check(err)
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Println(v)
	case "del":
		need(args, 2)
		ok, err := tree.Delete(parseKey(args[1]))
		check(err)
		if ok {
			fmt.Println("deleted")
		} else {
			fmt.Println("(not found)")
		}
	case "scan":
		need(args, 3)
		lo, hi := parseKey(args[1]), parseKey(args[2])
		n := 0
		err := tree.Range(lo, hi, func(k int64, v uint64) bool {
			fmt.Printf("%d\t%d\n", k, v)
			n++
			return true
		})
		check(err)
		fmt.Fprintf(os.Stderr, "%d keys\n", n)
	case "stat":
		cs := tree.CacheStats()
		splits, crossings := tree.Stats()
		fmt.Printf("keys: %d\ncapacity: %d items/node\n", tree.Len(), tree.Cap())
		fmt.Printf("buffer pool: %d/%d resident, hit ratio %s (%d hits, %d misses, %d evictions)\n",
			cs.Resident, cs.Capacity, hitRatioCell(cs), cs.Hits, cs.Misses, cs.Evictions)
		fmt.Printf("splits: %d   link crossings: %d\n", splits, crossings)
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		n := fs.Int("n", 100000, "operations")
		workers := fs.Int("workers", 8, "concurrent goroutines")
		reads := fs.Float64("reads", 0.5, "fraction of searches")
		check(fs.Parse(args[1:]))
		runBench(tree, *n, *workers, *reads)
	default:
		usage()
	}
}

func runBench(tree *btreeperf.DiskTree, n, workers int, reads float64) {
	if workers < 1 {
		workers = 1
	}
	if n > 0 && workers > n {
		workers = n
	}
	start := time.Now()
	var wg sync.WaitGroup
	// Spread the n % workers remainder over the first workers so exactly n
	// operations run (n/workers alone would silently drop the remainder
	// and overstate ops/s).
	per, extra := n/workers, n%workers
	for w := 0; w < workers; w++ {
		ops := per
		if w < extra {
			ops++
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			src := xrand.New(uint64(w)*2654435761 + 1)
			for i := 0; i < ops; i++ {
				k := src.Int63n(1 << 40)
				if src.Float64() < reads {
					if _, _, err := tree.Search(k); err != nil {
						panic(err)
					}
				} else if _, err := tree.Insert(k, uint64(i)); err != nil {
					panic(err)
				}
			}
		}(w, ops)
	}
	wg.Wait()
	elapsed := time.Since(start)
	cs := tree.CacheStats()
	fmt.Printf("%d ops in %v: %.0f ops/s (%d workers, %.0f%% reads)\n",
		n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds(), workers, reads*100)
	fmt.Printf("buffer pool hit ratio %s, %d keys in tree\n", hitRatioCell(cs), tree.Len())
}

// hitRatioCell formats a hit ratio, or "n/a" before any access.
func hitRatioCell(cs btreeperf.DiskCacheStats) string {
	if cs.Hits+cs.Misses == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", cs.HitRatio())
}

func parseKey(s string) int64 {
	k, err := strconv.ParseInt(s, 10, 64)
	check(err)
	return k
}

func need(args []string, n int) {
	if len(args) != n {
		usage()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "btstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: btstore [-db file] [-cap N] [-pool N] [-durable] <command>
commands:
  put <key> <val>    insert or replace
  get <key>          look up
  del <key>          delete
  scan <lo> <hi>     range scan
  stat               tree and buffer-pool statistics
  bench [-n N] [-workers W] [-reads F]   concurrent throughput benchmark`)
	os.Exit(2)
}
