// Command btmodel evaluates the analytical framework: given a tree shape,
// a cost model and a workload, it prints the per-level queue solution, the
// operation response times, the maximum and effective-maximum throughputs
// and the §6 rules of thumb.
//
// Examples:
//
//	btmodel -alg nlc -lambda 0.3
//	btmodel -alg od -nodecap 59 -height 4 -disk 10 -recovery naive -ttrans 100 -lambda 0.05
//	btmodel -alg link -lambda 10 -items 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"btreeperf/internal/core"
	"btreeperf/internal/shape"
	"btreeperf/internal/sim"
	"btreeperf/internal/table"
	"btreeperf/internal/workload"
)

func main() {
	var (
		algName    = flag.String("alg", "nlc", "algorithm: nlc, od, link, 2pl, olc")
		items      = flag.Int("items", 40000, "keys in the tree")
		nodeCap    = flag.Int("nodecap", 13, "maximum items per node (N)")
		height     = flag.Int("height", 0, "force tree height (0 = derive from items)")
		rootFanout = flag.Float64("rootfanout", 6, "root fanout when -height is forced")
		disk       = flag.Float64("disk", 5, "on-disk access cost multiplier (D)")
		memLevels  = flag.Int("mem", 2, "top levels held in memory")
		qs         = flag.Float64("qs", 0.3, "search fraction")
		qi         = flag.Float64("qi", 0.5, "insert fraction")
		qd         = flag.Float64("qd", 0.2, "delete fraction")
		lambda     = flag.Float64("lambda", 0.1, "total arrival rate")
		recovery   = flag.String("recovery", "none", "recovery protocol: none, leaf, naive (od only)")
		ttrans     = flag.Float64("ttrans", 100, "transaction commit delay for recovery")
		buffer     = flag.Float64("buffer", -1, "LRU buffer pool size in nodes (replaces -mem; -1 disables)")
		simSeeds   = flag.Int("simulate", 0, "cross-check the point with N simulator replications (0 = model only)")
		simOps     = flag.Int("simops", 10000, "operations per cross-check replication")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"replication worker pool size for -simulate (1 = sequential; results are identical either way)")
	)
	flag.Parse()
	sim.SetParallelism(*parallel)

	alg, err := parseAlg(*algName)
	check(err)
	var sh *shape.Model
	if *height > 0 {
		sh, err = shape.NewWithHeight(*height, *nodeCap, *rootFanout, *qi, *qd)
	} else {
		sh, err = shape.New(*items, *nodeCap, *qi, *qd)
	}
	check(err)
	costs := core.PaperCosts(*disk)
	costs.MemLevels = *memLevels
	if *buffer >= 0 {
		costs, err = core.BufferedCosts(sh, *buffer, costs)
		check(err)
		fmt.Printf("LRU buffer: %.0f nodes, expected hit ratio %.3f\n",
			*buffer, core.ExpectedHitRatio(sh, costs))
	}
	m := core.Model{Shape: sh, Costs: costs}
	mix := workload.Mix{QS: *qs, QI: *qi, QD: *qd}
	check(mix.Validate())
	w := core.Workload{Lambda: *lambda, Mix: mix}

	fmt.Printf("tree: %v\n", sh)
	fmt.Printf("algorithm: %v   disk cost: %v   mix: qs=%.2f qi=%.2f qd=%.2f   λ=%v\n\n",
		alg, *disk, *qs, *qi, *qd, *lambda)

	var res *core.Result
	switch alg {
	case core.OD:
		rec, err := parseRecovery(*recovery)
		check(err)
		res, err = core.AnalyzeOD(m, w, core.ODOptions{Recovery: rec, TTrans: *ttrans})
		check(err)
	default:
		res, err = core.Analyze(alg, m, w)
		check(err)
	}

	tb := table.New("Per-level queue solution (leaf = level 1)",
		"level", "lambda_r", "lambda_w", "mu_r", "mu_w", "rho_w", "R_wait", "W_wait", "stable")
	for _, lv := range res.Levels {
		tb.AddRow(fmt.Sprint(lv.Level), table.F(lv.LambdaR), table.F(lv.LambdaW),
			table.F(lv.MuR), table.F(lv.MuW), table.F(lv.RhoW),
			table.F(lv.R), table.F(lv.W), fmt.Sprint(lv.Stable))
	}
	check(tb.Render(os.Stdout))

	fmt.Printf("\nresponse times: search=%s insert=%s delete=%s (stable=%v)\n",
		table.F(res.RespSearch), table.F(res.RespInsert), table.F(res.RespDelete), res.Stable)
	if alg == core.OLC {
		fmt.Printf("latch-free reads: restart prob=%s  fallback prob=%s  restarts/op=%s\n",
			table.F(res.RestartProb), table.F(res.FallbackProb), table.F(res.RestartsPerOp))
	}

	if *simSeeds > 0 {
		rec, err := parseRecovery(*recovery)
		check(err)
		cfg := sim.Paper(alg, *lambda, *disk)
		cfg.NodeCap = *nodeCap
		cfg.InitialItems = sh.Items
		cfg.Mix = mix
		cfg.Costs = costs
		cfg.Recovery = rec
		cfg.TTrans = *ttrans
		cfg.Ops = *simOps
		cfg.Warmup = *simOps / 10
		rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(*simSeeds))
		check(err)
		fmt.Printf("simulator (%d seeds × %d ops, %d workers): search=%s insert=%s delete=%s ρ_w(root)=%s unstable=%v\n",
			*simSeeds, *simOps, sim.Parallelism(),
			table.FE(rep.RespSearch.Mean, rep.RespSearch.CI95),
			table.FE(rep.RespInsert.Mean, rep.RespInsert.CI95),
			table.FE(rep.RespDelete.Mean, rep.RespDelete.CI95),
			table.FE(rep.RootRhoW.Mean, rep.RootRhoW.CI95), rep.Unstable)
	}

	mixOnly := core.Workload{Mix: mix}
	lmax, err := core.MaxThroughput(alg, m, mixOnly, 1e-4)
	check(err)
	l50, err := core.EffectiveMaxThroughput(alg, m, mixOnly, 0.5, 1e-4)
	check(err)
	fmt.Printf("max throughput: %s   effective max (ρ_w=.5): %s\n", table.F(lmax), table.F(l50))

	switch alg {
	case core.NLC:
		if r1, err := core.RuleOfThumb1(m, mixOnly); err == nil {
			r2, _ := core.RuleOfThumb2(m, mixOnly)
			fmt.Printf("rule of thumb 1: %s   limit rule 2: %s\n", table.F(r1), table.F(r2))
		}
	case core.OD:
		if r3, err := core.RuleOfThumb3(m, mixOnly); err == nil {
			r4, _ := core.RuleOfThumb4(m, mixOnly)
			fmt.Printf("rule of thumb 3: %s   limit rule 4: %s\n", table.F(r3), table.F(r4))
		}
	}
}

func parseAlg(s string) (core.Algorithm, error) {
	switch s {
	case "nlc", "lock-coupling":
		return core.NLC, nil
	case "od", "optimistic":
		return core.OD, nil
	case "link", "lehman-yao":
		return core.Link, nil
	case "2pl", "two-phase":
		return core.TwoPhase, nil
	case "olc", "optimistic-lock-coupling":
		return core.OLC, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want nlc, od, link, 2pl or olc)", s)
	}
}

func parseRecovery(s string) (core.RecoveryPolicy, error) {
	switch s {
	case "none":
		return core.NoRecovery, nil
	case "leaf", "leaf-only":
		return core.LeafOnly, nil
	case "naive":
		return core.NaiveRecovery, nil
	default:
		return 0, fmt.Errorf("unknown recovery %q (want none, leaf or naive)", s)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "btmodel:", err)
		os.Exit(1)
	}
}
