// Command btsim runs the concurrent B-tree simulator (§4 of the paper):
// it builds a tree, fires Poisson-arriving concurrent operations at it
// under the chosen concurrency-control algorithm, and reports response
// times, per-level lock waits, root writer utilization, restarts and link
// crossings.
//
// Examples:
//
//	btsim -alg nlc -lambda 0.3
//	btsim -alg link -lambda 20 -seeds 5
//	btsim -alg od -recovery naive -ttrans 100 -disk 10 -lambda 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"btreeperf/internal/core"
	"btreeperf/internal/sim"
	"btreeperf/internal/table"
	"btreeperf/internal/workload"
)

func main() {
	var (
		algName  = flag.String("alg", "nlc", "algorithm: nlc, od, link, 2pl, olc")
		lambda   = flag.Float64("lambda", 0.1, "total arrival rate")
		disk     = flag.Float64("disk", 5, "on-disk access cost multiplier")
		nodeCap  = flag.Int("nodecap", 13, "maximum items per node")
		items    = flag.Int("items", 40000, "initial tree size")
		ops      = flag.Int("ops", 10000, "concurrent operations")
		warmup   = flag.Int("warmup", 1000, "operations excluded from statistics")
		seeds    = flag.Int("seeds", 1, "replications")
		seed     = flag.Uint64("seed", 1, "base seed (single replication)")
		qs       = flag.Float64("qs", 0.3, "search fraction")
		qi       = flag.Float64("qi", 0.5, "insert fraction")
		qd       = flag.Float64("qd", 0.2, "delete fraction")
		recovery = flag.String("recovery", "none", "recovery protocol: none, leaf, naive")
		ttrans   = flag.Float64("ttrans", 0, "transaction commit delay for recovery")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"replication worker pool size (1 = sequential; results are identical either way)")
	)
	flag.Parse()
	sim.SetParallelism(*parallel)

	alg, err := parseAlg(*algName)
	check(err)
	rec, err := parseRecovery(*recovery)
	check(err)

	cfg := sim.Paper(alg, *lambda, *disk)
	cfg.NodeCap = *nodeCap
	cfg.InitialItems = *items
	cfg.Ops = *ops
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.Recovery = rec
	cfg.TTrans = *ttrans
	cfg.Mix = workload.Mix{QS: *qs, QI: *qi, QD: *qd}

	if *seeds > 1 {
		rep, err := sim.RunSeeds(cfg, sim.DefaultSeeds(*seeds))
		check(err)
		fmt.Printf("%s λ=%v D=%v N=%d items=%d ops=%d seeds=%d\n",
			alg, *lambda, *disk, *nodeCap, *items, *ops, *seeds)
		fmt.Printf("search: %s   insert: %s   delete: %s\n",
			table.FE(rep.RespSearch.Mean, rep.RespSearch.CI95),
			table.FE(rep.RespInsert.Mean, rep.RespInsert.CI95),
			table.FE(rep.RespDelete.Mean, rep.RespDelete.CI95))
		fmt.Printf("root ρ_w: %s   unstable: %v\n",
			table.FE(rep.RootRhoW.Mean, rep.RootRhoW.CI95), rep.Unstable)
		return
	}

	res, err := sim.Run(cfg)
	check(err)
	fmt.Printf("%s λ=%v D=%v N=%d items=%d ops=%d seed=%d\n",
		alg, *lambda, *disk, *nodeCap, *items, *ops, *seed)
	fmt.Printf("completed=%d measured=%d duration=%s height=%d unstable=%v\n",
		res.Completed, res.Measured, table.F(res.Duration), res.TreeHeight, res.Unstable)
	fmt.Printf("search: %s   insert: %s   delete: %s\n",
		table.FE(res.RespSearch.Mean, res.RespSearch.CI95),
		table.FE(res.RespInsert.Mean, res.RespInsert.CI95),
		table.FE(res.RespDelete.Mean, res.RespDelete.CI95))
	fmt.Printf("root ρ_w=%s  restarts=%d  crossings=%d  splits=%d\n",
		table.F(res.RootRhoW), res.Restarts, res.LinkCrossings, res.Splits)
	if alg == core.OLC {
		fmt.Printf("latch-free read restarts=%d  locked fallbacks=%d\n",
			res.ReadRestarts, res.ReadFallbacks)
	}
	p := res.Percentiles
	fmt.Printf("response percentiles: p50=%s p90=%s p95=%s p99=%s max=%s\n\n",
		table.F(p.P50), table.F(p.P90), table.F(p.P95), table.F(p.P99), table.F(p.Max))

	tb := table.New("Per-level lock waits (leaf = level 1)",
		"level", "mean_wait_R", "mean_wait_W", "grants_R", "grants_W")
	for _, lw := range res.LevelWaits {
		tb.AddRow(fmt.Sprint(lw.Level), table.F(lw.MeanWaitR), table.F(lw.MeanWaitW),
			fmt.Sprint(lw.GrantsR), fmt.Sprint(lw.GrantsW))
	}
	check(tb.Render(os.Stdout))
}

func parseAlg(s string) (core.Algorithm, error) {
	switch s {
	case "nlc", "lock-coupling":
		return core.NLC, nil
	case "od", "optimistic":
		return core.OD, nil
	case "link", "lehman-yao":
		return core.Link, nil
	case "2pl", "two-phase":
		return core.TwoPhase, nil
	case "olc", "optimistic-lock-coupling":
		return core.OLC, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want nlc, od, link, 2pl or olc)", s)
	}
}

func parseRecovery(s string) (core.RecoveryPolicy, error) {
	switch s {
	case "none":
		return core.NoRecovery, nil
	case "leaf", "leaf-only":
		return core.LeafOnly, nil
	case "naive":
		return core.NaiveRecovery, nil
	default:
		return 0, fmt.Errorf("unknown recovery %q", s)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "btsim:", err)
		os.Exit(1)
	}
}
