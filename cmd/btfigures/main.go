// Command btfigures regenerates the paper's evaluation figures (3–16),
// writing one aligned-text table and one CSV per figure.
//
// Examples:
//
//	btfigures -fig all -out results
//	btfigures -fig 3,12 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"btreeperf/internal/experiments"
	"btreeperf/internal/sim"
)

func main() {
	var (
		figs     = flag.String("fig", "all", "comma-separated figure numbers (3..16) or 'all'")
		quick    = flag.Bool("quick", false, "reduced sweeps and replication for a fast pass")
		out      = flag.String("out", "results", "output directory ('' to skip files)")
		seeds    = flag.Int("seeds", 0, "replications per point (default: paper's 5)")
		ops      = flag.Int("ops", 0, "operations per replication (default: paper's 10000)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"simulation worker pool size (1 = sequential; tables are identical either way)")
		progress = flag.Bool("progress", true, "periodic per-figure progress lines on stderr")
	)
	flag.Parse()
	sim.SetParallelism(*parallel)

	var selected []experiments.Figure
	if *figs == "all" {
		selected = append(experiments.All(), experiments.Extras()...)
	} else {
		for _, id := range strings.Split(*figs, ",") {
			f, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "btfigures: unknown figure %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, f)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "btfigures:", err)
			os.Exit(1)
		}
	}

	opts := experiments.Options{Quick: *quick, Seeds: *seeds, Ops: *ops}
	grand := time.Now()
	for _, f := range selected {
		start := time.Now()
		stop := make(chan struct{})
		ticked := make(chan struct{})
		if *progress {
			go watchProgress(f.ID, start, stop, ticked)
		} else {
			close(ticked)
		}
		sim.ResetPoolProgress()
		tb, err := f.Run(opts)
		close(stop)
		<-ticked
		if err != nil {
			fmt.Fprintf(os.Stderr, "btfigures: %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		tb.Title = f.Title
		tb.Caption = f.Caption
		fmt.Println()
		if err := tb.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "btfigures:", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		p := sim.PoolProgress()
		fmt.Printf("(%s in %v: %d/%d replications, %d ops, %s, %d workers)\n",
			f.ID, elapsed.Round(time.Millisecond), p.Done, p.Queued, p.Ops,
			opsRate(p.Ops, elapsed), sim.Parallelism())

		if *out != "" {
			txt, err := os.Create(filepath.Join(*out, f.ID+".txt"))
			if err == nil {
				err = tb.Render(txt)
				txt.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "btfigures:", err)
				os.Exit(1)
			}
			csvf, err := os.Create(filepath.Join(*out, f.ID+".csv"))
			if err == nil {
				err = tb.WriteCSV(csvf)
				csvf.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "btfigures:", err)
				os.Exit(1)
			}
		}
	}
	if len(selected) > 1 {
		fmt.Printf("\ntotal: %d figures in %v (-parallel %d)\n",
			len(selected), time.Since(grand).Round(time.Millisecond), sim.Parallelism())
	}
}

// watchProgress emits a periodic stderr line with the worker pool's
// replication and throughput counters until stop closes, then signals
// ticked so the final per-figure summary never interleaves with it.
func watchProgress(id string, start time.Time, stop <-chan struct{}, ticked chan<- struct{}) {
	defer close(ticked)
	t := time.NewTicker(2 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p := sim.PoolProgress()
			fmt.Fprintf(os.Stderr, "btfigures: %s: %d/%d replications, %d ops (%s)\n",
				id, p.Done, p.Queued, p.Ops, opsRate(p.Ops, time.Since(start)))
		}
	}
}

// opsRate formats simulated operations per wall-clock second.
func opsRate(ops int64, elapsed time.Duration) string {
	if elapsed <= 0 {
		return "0 ops/s"
	}
	r := float64(ops) / elapsed.Seconds()
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM ops/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk ops/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f ops/s", r)
	}
}
