// Command btfigures regenerates the paper's evaluation figures (3–16),
// writing one aligned-text table and one CSV per figure.
//
// Examples:
//
//	btfigures -fig all -out results
//	btfigures -fig 3,12 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"btreeperf/internal/experiments"
)

func main() {
	var (
		figs  = flag.String("fig", "all", "comma-separated figure numbers (3..16) or 'all'")
		quick = flag.Bool("quick", false, "reduced sweeps and replication for a fast pass")
		out   = flag.String("out", "results", "output directory ('' to skip files)")
		seeds = flag.Int("seeds", 0, "replications per point (default: paper's 5)")
		ops   = flag.Int("ops", 0, "operations per replication (default: paper's 10000)")
	)
	flag.Parse()

	var selected []experiments.Figure
	if *figs == "all" {
		selected = append(experiments.All(), experiments.Extras()...)
	} else {
		for _, id := range strings.Split(*figs, ",") {
			f, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "btfigures: unknown figure %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, f)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "btfigures:", err)
			os.Exit(1)
		}
	}

	opts := experiments.Options{Quick: *quick, Seeds: *seeds, Ops: *ops}
	for _, f := range selected {
		start := time.Now()
		tb, err := f.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btfigures: %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		tb.Title = f.Title
		tb.Caption = f.Caption
		fmt.Println()
		if err := tb.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "btfigures:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n", f.ID, time.Since(start).Round(time.Millisecond))

		if *out != "" {
			txt, err := os.Create(filepath.Join(*out, f.ID+".txt"))
			if err == nil {
				err = tb.Render(txt)
				txt.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "btfigures:", err)
				os.Exit(1)
			}
			csvf, err := os.Create(filepath.Join(*out, f.ID+".csv"))
			if err == nil {
				err = tb.WriteCSV(csvf)
				csvf.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "btfigures:", err)
				os.Exit(1)
			}
		}
	}
}
